// svc layer 4 — the Server facade: generation as a service.
//
// One Server = one admission gate + one bounded priority JobQueue + one
// WorkerPool draining it through core::generate + one ResultCache serving
// repeats. The public surface is submit / poll / cancel / wait / shutdown;
// everything scheduling-relevant is wall-clock free (virtual admission
// ticks, priority + FIFO ordering, LRU by access counter), so the decision
// trace is a deterministic function of the call history. Wall-clock is
// *measured* (job latency histogram) but never consulted.
//
// Concurrency model: one mutex guards all server state (queue, records,
// cache, metrics registry); workers hold it only to transition job states,
// never while generating. Each running job spawns its spec's rank threads
// via mps::run_ranks, exactly like a direct generate() call. Cancellation
// is cooperative: cancel() flips the job's flag, every rank of the running
// job polls it through ParallelOptions::cancel_requested and unwinds
// through the mps abort path — the worker survives and takes the next job
// (docs/serving.md §4).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "mps/fault.h"
#include "obs/metrics.h"
#include "svc/cache.h"
#include "svc/flight.h"
#include "svc/job.h"
#include "svc/queue.h"
#include "svc/retry.h"

namespace pagen::svc {

struct ServerOptions {
  /// Concurrent generation jobs (each additionally spawns its spec's rank
  /// threads while running).
  int workers = 4;

  /// Bounded queue depth: the admission-control valve. Submits beyond it
  /// are shed or rejected with Reject::kQueueFull — the client's
  /// backpressure signal — never buffered.
  std::size_t queue_capacity = 64;

  /// Result-cache LRU bound (entries). 0 disables caching.
  std::size_t cache_entries = 32;

  /// Start with dispatch paused: jobs are admitted and queued but no
  /// worker pops until resume(). Makes admission-order tests and staged
  /// load patterns deterministic.
  bool start_paused = false;

  // --- Fault tolerance (docs/robustness.md §6) ---

  /// Root directory for per-job checkpoint directories
  /// (`<root>/job-<id>`). Empty disables job checkpointing: a retried
  /// attempt then regenerates from scratch (still correct, just slower).
  std::string checkpoint_root{};

  /// Resolutions between checkpoint writes per rank (per-job runs use a
  /// tighter cadence than the standalone default so short jobs leave
  /// resumable progress behind).
  Count checkpoint_every = 1024;

  /// Retry backoff in virtual ticks: base, doubling per failed attempt up
  /// to cap (svc/retry.h). The virtual retry clock advances on accepts and
  /// terminal jobs and fast-forwards when the server is idle, so backoff
  /// never consults (or waits on) wall clock.
  std::uint64_t backoff_base = 1;
  std::uint64_t backoff_cap = 8;

  /// Per-spec circuit breaker: after `breaker_threshold` consecutive
  /// terminal failures of a spec, submits of it fast-fail
  /// (Reject::kCircuitOpen) until `breaker_cooldown` admission ticks pass;
  /// then one probationary attempt half-opens it. 0 disables the breaker.
  std::uint32_t breaker_threshold = 0;
  std::uint64_t breaker_cooldown = 16;

  /// Service-scope chaos plan (mps::FaultPlan jobfail= / storecorrupt= /
  /// ckptcorrupt= keys; transport-scope keys are ignored here — put those
  /// in JobSpec::fault_plan). Every decision is a pure function of
  /// (plan seed, job id, attempt), so a chaos run replays from its seed.
  mps::FaultPlan chaos{};
};

/// Point-in-time tallies (a locked snapshot of the obs instruments).
struct ServerStats {
  Count submits = 0;    ///< all submit() calls, accepted or not
  Count accepted = 0;   ///< admitted jobs (queued or cache-served)
  Count rejected = 0;   ///< admission rejects, all reasons
  Count completed = 0;  ///< terminal kCompleted (including cache-served)
  Count cancelled = 0;
  Count expired = 0;
  Count failed = 0;   ///< terminal kFailed (all attempts exhausted)
  Count shed = 0;     ///< queued jobs evicted for higher-priority arrivals
  Count retries = 0;  ///< failed attempts re-queued with backoff
  Count resumed = 0;  ///< retry attempts that restored checkpoint progress
  Count circuit_open_rejects = 0;  ///< submits fast-failed by the breaker
  Count quarantined_stores = 0;    ///< corrupt sharded stores quarantined
  Count quarantined_checkpoints = 0;  ///< corrupt checkpoint files quarantined
  Count cache_hits = 0;        ///< memory-cache serves
  Count cache_store_hits = 0;  ///< sharded-store serves
  Count cache_misses = 0;
  std::size_t queue_depth = 0;
  int running = 0;
};

class Server {
 public:
  struct Submitted {
    JobId id = kNoJob;           ///< kNoJob exactly when rejected
    Reject reject = Reject::kNone;
    bool from_cache = false;     ///< completed instantly from cache/store
    /// Overload hint on kQueueFull / kCircuitOpen rejects: how many
    /// admission ticks the client should wait before resubmitting.
    std::uint64_t retry_after = 0;
  };

  explicit Server(ServerOptions options);
  ~Server();  ///< cancel-everything shutdown if none was requested

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Admission: validate, check the deadline against the admission tick,
  /// try the result cache and the sharded-store probe, then queue. Rejects
  /// carry a reason and leave no record (retry later). A cache/store hit
  /// returns an already-completed job.
  Submitted submit(const JobSpec& spec);

  /// Snapshot of a job's state. The id must have been issued by submit().
  [[nodiscard]] JobStatus poll(JobId id) const;

  /// Cancel a job: a queued job terminates kCancelled immediately; a
  /// running job gets its cooperative flag set and terminates kCancelled
  /// once its ranks drain (the worker survives). False when the job is
  /// already terminal.
  bool cancel(JobId id);

  /// Block until the job is terminal; returns the final status.
  JobStatus wait(JobId id);

  /// Open the dispatch gate of a start_paused server (idempotent).
  void resume();

  /// Stop the server. drain = true: stop admitting, finish every queued
  /// and running job, then join the workers. drain = false: cancel every
  /// queued job, flag every running job for cooperative cancellation, and
  /// join once they drain. Idempotent; the destructor calls
  /// shutdown(false) if neither was requested.
  void shutdown(bool drain);

  [[nodiscard]] ServerStats stats() const;

  /// Deterministic obs-metrics JSON of the service instruments
  /// (svc.queue_depth, svc.cache_hits, svc.job_latency_ns, ...).
  void write_metrics(std::ostream& os) const;

  /// Prometheus text exposition of the same instruments (obs/prom.h
  /// mapping: svc.job_latency_ns -> pagen_svc_job_latency_ns with
  /// cumulative buckets and _p50/_p95/_p99 gauges). Scrape-ready.
  void write_prometheus(std::ostream& os) const;

  /// Recent incident lines, oldest first: each cancelled / expired / failed
  /// job contributes its rendered flight-recorder ring, each admission
  /// reject a one-liner. Bounded retention (kMaxIncidents) — a live
  /// service's last-N post-mortems, not an unbounded log.
  [[nodiscard]] std::vector<std::string> incidents() const;

  /// The current admission tick (accepted-job count): the clock that
  /// JobSpec::deadline is measured against.
  [[nodiscard]] std::uint64_t tick() const {
    return ticks_.load(std::memory_order_relaxed);
  }

 private:
  struct Record {
    JobSpec spec;
    std::uint64_t hash = 0;
    std::uint64_t seq = 0;  ///< admission tick at accept (queue tie-break)
    std::int64_t submit_ns = 0;
    std::int64_t dispatch_ns = 0;  ///< worker pop time (0 = never dispatched)
    JobState state = JobState::kQueued;
    bool from_cache = false;
    std::uint32_t attempts = 0;  ///< worker runs consumed (bumped under mu_)
    bool resumed = false;  ///< some attempt restored checkpoint progress
    std::string error;
    std::shared_ptr<const JobOutput> output;
    std::atomic<bool> cancel{false};
    FlightRecorder flight;  ///< per-job transition ring (noted under mu_)
  };

  static constexpr std::size_t kMaxIncidents = 16;

  void worker_loop();
  /// Is a queue entry dispatchable at the current retry clock? Fast-forwards
  /// the clock over a pure-backoff backlog when the server is idle — virtual
  /// time is free, so an empty machine never sits out a backoff (mu_ held).
  [[nodiscard]] bool dispatchable();
  /// Run one generation attempt outside the lock; finalizes the record
  /// (complete / retry-with-backoff / fail / cancel) under the lock.
  void run_job(JobId id, const std::shared_ptr<Record>& rec);
  /// The job's per-attempt checkpoint directory ("" when disabled).
  [[nodiscard]] std::string job_checkpoint_dir(JobId id) const;
  /// Quarantine unreadable checkpoint files before a resume attempt.
  void quarantine_bad_checkpoints(JobId id, const std::string& dir,
                                  int ranks);
  /// Can `out` satisfy a request shaped like `spec`?
  [[nodiscard]] static bool serves(const JobSpec& spec, const JobOutput& out);
  /// Tally one admission reject (mu_ held).
  Submitted rejected(Reject why);
  /// Retain a bounded incident line (mu_ held).
  void push_incident(std::string line);
  /// Render `rec`'s flight ring into the incident buffer (mu_ held).
  void flight_incident(JobId id, const Record& rec, const char* why);
  /// Install an already-completed record for a cache/store serve
  /// (mu_ held).
  Submitted serve_completed(const JobSpec& spec, std::uint64_t hash,
                            std::shared_ptr<const JobOutput> output);

  ServerOptions options_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;  ///< workers: queue / stop / resume
  std::condition_variable done_cv_;  ///< waiters: job transitions, drain
  JobQueue queue_;
  ResultCache cache_;
  CircuitBreaker breaker_;
  std::map<JobId, std::shared_ptr<Record>> jobs_;
  JobId next_id_ = 1;
  std::atomic<std::uint64_t> ticks_{0};
  /// Virtual retry clock (mu_ held): advances on accepts and terminal
  /// jobs, fast-forwards over backoff gaps when the server is idle.
  /// Backoffs are measured on this clock, so retries never sleep.
  std::uint64_t retry_clock_ = 0;
  bool paused_ = false;
  bool draining_ = false;  ///< admission closed
  bool stop_ = false;      ///< workers exit when the queue is empty
  bool joined_ = false;
  int running_ = 0;

  // Obs instruments (registry and instruments mutated under mu_ only).
  obs::MetricsRegistry metrics_;
  obs::Counter* submits_;
  obs::Counter* accepted_;
  obs::Counter* rejects_all_;
  obs::Counter* rejects_queue_full_;
  obs::Counter* rejects_shutting_down_;
  obs::Counter* rejects_invalid_;
  obs::Counter* rejects_deadline_;
  obs::Counter* rejects_circuit_;
  obs::Counter* completed_;
  obs::Counter* cancelled_;
  obs::Counter* expired_;
  obs::Counter* failed_;
  obs::Counter* shed_;
  obs::Counter* retries_;
  obs::Counter* resumed_;
  obs::Counter* store_quarantined_;
  obs::Counter* ckpt_quarantined_;
  obs::Counter* store_hits_;
  obs::Gauge* queue_depth_;
  obs::Gauge* running_gauge_;
  obs::Histogram* latency_;
  obs::Histogram* queue_wait_;  ///< submit -> worker pop, ns
  obs::Histogram* run_ns_;      ///< worker pop -> terminal, ns

  std::deque<std::string> incidents_;  ///< last kMaxIncidents, oldest first
  std::vector<std::thread> workers_;
};

}  // namespace pagen::svc
