// pagen-lint: no-wallclock (see cache.h)
#include "svc/cache.h"

#include <fstream>
#include <utility>

#include "graph/sharded_io.h"
#include "util/error.h"

namespace pagen::svc {

ResultCache::ResultCache(std::size_t max_entries) : max_entries_(max_entries) {}

std::shared_ptr<const JobOutput> ResultCache::lookup(std::uint64_t key) {
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    if (misses_metric_ != nullptr) misses_metric_->add();
    return nullptr;
  }
  ++hits_;
  if (hits_metric_ != nullptr) hits_metric_->add();
  lru_.erase(it->second.lru_pos);
  lru_.push_front(key);
  it->second.lru_pos = lru_.begin();
  return it->second.value;
}

void ResultCache::insert(std::uint64_t key,
                         std::shared_ptr<const JobOutput> value) {
  if (max_entries_ == 0) return;
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    // Refresh: newer output wins (e.g. a store-served entry upgraded by a
    // fresh gather run that also carries the targets row).
    it->second.value = std::move(value);
    lru_.erase(it->second.lru_pos);
    lru_.push_front(key);
    it->second.lru_pos = lru_.begin();
    return;
  }
  if (entries_.size() >= max_entries_) {
    const std::uint64_t victim = lru_.back();
    lru_.pop_back();
    entries_.erase(victim);
    ++evictions_;
    if (evictions_metric_ != nullptr) evictions_metric_->add();
  }
  lru_.push_front(key);
  entries_.emplace(key, Entry{std::move(value), lru_.begin()});
}

void ResultCache::bind_metrics(obs::Counter* hits, obs::Counter* misses,
                               obs::Counter* evictions) {
  hits_metric_ = hits;
  misses_metric_ = misses;
  evictions_metric_ = evictions;
}

std::string store_marker_path(const std::string& dir) {
  return dir + "/svc-spec";
}

void write_store_marker(const std::string& dir, std::uint64_t hash) {
  std::ofstream os(store_marker_path(dir), std::ios::trunc);
  PAGEN_CHECK_MSG(os.is_open(),
                  "cannot write store marker in " << dir);
  os << "pagen.svc.store.v1 " << std::hex << hash << "\n";
  PAGEN_CHECK_MSG(os.good(), "store marker write failed in " << dir);
}

bool store_matches(const std::string& dir, const JobSpec& spec) {
  std::ifstream is(store_marker_path(dir));
  if (!is.is_open()) return false;
  std::string tag;
  std::uint64_t recorded = 0;
  is >> tag >> std::hex >> recorded;
  if (!is || tag != "pagen.svc.store.v1") return false;
  if (recorded != spec_hash(spec)) return false;
  try {
    const graph::ShardManifest manifest = graph::load_manifest(dir);
    return manifest.num_nodes == spec.config.n &&
           manifest.total_edges() == expected_edge_count(spec.config);
  } catch (const CheckError&) {
    return false;  // absent or torn manifest: a miss, not an error
  }
}

}  // namespace pagen::svc
