// pagen-lint: no-wallclock (see cache.h)
#include "svc/cache.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "graph/sharded_io.h"
#include "graph/varint_io.h"
#include "store/edge_writer.h"
#include "util/error.h"

namespace pagen::svc {

ResultCache::ResultCache(std::size_t max_entries) : max_entries_(max_entries) {}

std::shared_ptr<const JobOutput> ResultCache::lookup(std::uint64_t key) {
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    if (misses_metric_ != nullptr) misses_metric_->add();
    return nullptr;
  }
  ++hits_;
  if (hits_metric_ != nullptr) hits_metric_->add();
  lru_.erase(it->second.lru_pos);
  lru_.push_front(key);
  it->second.lru_pos = lru_.begin();
  return it->second.value;
}

void ResultCache::insert(std::uint64_t key,
                         std::shared_ptr<const JobOutput> value) {
  if (max_entries_ == 0) return;
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    // Refresh: newer output wins (e.g. a store-served entry upgraded by a
    // fresh gather run that also carries the targets row).
    it->second.value = std::move(value);
    lru_.erase(it->second.lru_pos);
    lru_.push_front(key);
    it->second.lru_pos = lru_.begin();
    return;
  }
  if (entries_.size() >= max_entries_) {
    const std::uint64_t victim = lru_.back();
    lru_.pop_back();
    entries_.erase(victim);
    ++evictions_;
    if (evictions_metric_ != nullptr) evictions_metric_->add();
  }
  lru_.push_front(key);
  entries_.emplace(key, Entry{std::move(value), lru_.begin()});
}

void ResultCache::bind_metrics(obs::Counter* hits, obs::Counter* misses,
                               obs::Counter* evictions) {
  hits_metric_ = hits;
  misses_metric_ = misses;
  evictions_metric_ = evictions;
}

namespace {

/// FNV-1a over a file's raw bytes (streamed in chunks — store shards can be
/// multi-GB); false when the file cannot be read.
bool file_fnv1a(const std::string& path, std::uint64_t& out) {
  return store::streaming_file_fnv1a(path, out);
}

/// Manifest file path (mirrors graph/sharded_io.cpp's layout).
std::string manifest_path(const std::string& dir) {
  return dir + "/manifest.pagen";
}

}  // namespace

std::string store_marker_path(const std::string& dir) {
  return dir + "/svc-spec";
}

void write_store_marker(const std::string& dir, std::uint64_t hash) {
  const bool compressed = store::is_compressed_store(dir);
  int num_shards = 0;
  if (compressed) {
    num_shards = store::load_manifest(dir).num_shards;
  } else {
    num_shards = graph::load_manifest(dir).num_shards;
  }
  const std::string mpath =
      compressed ? store::manifest_path(dir) : manifest_path(dir);
  std::ofstream os(store_marker_path(dir), std::ios::trunc);
  PAGEN_CHECK_MSG(os.is_open(),
                  "cannot write store marker in " << dir);
  os << (compressed ? "pagen.svc.store.v3 " : "pagen.svc.store.v2 ")
     << std::hex << hash << "\n";
  std::uint64_t sum = 0;
  PAGEN_CHECK_MSG(file_fnv1a(mpath, sum),
                  "cannot checksum manifest in " << dir);
  os << "manifest " << std::hex << sum << "\n";
  for (int r = 0; r < num_shards; ++r) {
    const std::string spath =
        compressed ? store::shard_path(dir, r) : graph::shard_path(dir, r);
    PAGEN_CHECK_MSG(file_fnv1a(spath, sum),
                    "cannot checksum shard " << r << " in " << dir);
    os << "shard " << std::dec << r << " " << std::hex << sum << "\n";
  }
  PAGEN_CHECK_MSG(os.good(), "store marker write failed in " << dir);
}

StoreProbe probe_store(const std::string& dir, const JobSpec& spec) {
  StoreProbe probe;
  std::ifstream is(store_marker_path(dir));
  if (!is.is_open()) return probe;  // no marker: plain miss
  std::string tag;
  std::uint64_t recorded = 0;
  is >> tag >> std::hex >> recorded;
  if (!is) return probe;
  // Legacy v1 markers carry no content checksums and cannot be verified;
  // treat them as a miss so the store is regenerated under a current seal.
  // v2 seals a raw sharded store, v3 a compressed block store — same
  // marker shape, different manifest/shard file layout underneath.
  if (tag != "pagen.svc.store.v2" && tag != "pagen.svc.store.v3") {
    return probe;
  }
  const bool compressed = tag == "pagen.svc.store.v3";
  if (recorded != spec_hash(spec)) return probe;  // another spec's store
  probe.compressed = compressed;
  // The marker claims this spec: from here every defect is corruption.
  const std::string mpath =
      compressed ? store::manifest_path(dir) : manifest_path(dir);
  std::ostringstream why;
  std::uint64_t want = 0;
  std::uint64_t got = 0;
  if (!(is >> tag >> std::hex >> want) || tag != "manifest") {
    why << "marker truncated before manifest checksum";
  } else if (!file_fnv1a(mpath, got)) {
    why << "manifest unreadable";
  } else if (got != want) {
    why << "manifest checksum mismatch";
  } else {
    int shard = -1;
    while (is >> tag) {
      if (tag != "shard" || !(is >> std::dec >> shard >> std::hex >> want)) {
        why << "malformed marker shard line";
        break;
      }
      const std::string spath = compressed ? store::shard_path(dir, shard)
                                           : graph::shard_path(dir, shard);
      if (!file_fnv1a(spath, got)) {
        why << "shard " << shard << " unreadable";
        break;
      }
      if (got != want) {
        why << "shard " << shard << " checksum mismatch";
        break;
      }
    }
  }
  if (!why.str().empty()) {
    probe.corrupt = true;
    probe.detail = why.str();
    return probe;
  }
  try {
    NodeId num_nodes = 0;
    Count total_edges = 0;
    if (compressed) {
      const store::StoreManifest manifest = store::load_manifest(dir);
      num_nodes = manifest.num_nodes;
      total_edges = manifest.total_edges();
    } else {
      const graph::ShardManifest manifest = graph::load_manifest(dir);
      num_nodes = manifest.num_nodes;
      total_edges = manifest.total_edges();
    }
    if (num_nodes == spec.config.n &&
        total_edges == expected_edge_count(spec.config)) {
      probe.match = true;
    } else {
      probe.corrupt = true;
      probe.detail = "manifest counts disagree with spec";
    }
  } catch (const CheckError& e) {
    probe.corrupt = true;
    probe.detail = e.what();
  }
  return probe;
}

bool store_matches(const std::string& dir, const JobSpec& spec) {
  return probe_store(dir, spec).match;
}

bool quarantine_file(const std::string& path) {
  std::error_code ec;
  std::filesystem::rename(path, path + ".quarantined", ec);
  return !ec;
}

bool quarantine_store(const std::string& dir) {
  return quarantine_file(store_marker_path(dir));
}

}  // namespace pagen::svc
