// svc layer 3 — the result cache: repeat requests never regenerate.
//
// pagen-lint: no-wallclock — eviction is LRU over a virtual access
// counter, never over timestamps (docs/serving.md).
//
// Two serving tiers, both keyed by the canonical spec_hash:
//
//  * ResultCache — an in-memory LRU of JobOutputs. Externally synchronized
//    (the Server's mutex); recency is a virtual access counter, so eviction
//    order is a deterministic function of the access history, not of
//    wall-clock.
//
//  * Sharded-store probe — a spec whose store_dir already holds a sharded
//    store (graph/sharded_io.h) *produced by the same spec* is served from
//    disk without regeneration, surviving process restarts. Provenance is a
//    marker file recording the producing spec hash next to the manifest;
//    the manifest alone (num_nodes + counts) could not tell two seeds
//    apart. See docs/serving.md §3.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <string>

#include "obs/metrics.h"
#include "svc/job.h"

namespace pagen::svc {

class ResultCache {
 public:
  /// @param max_entries LRU bound; 0 disables the cache (lookup always
  ///   misses, insert is a no-op) for ablation runs.
  explicit ResultCache(std::size_t max_entries);

  /// The cached output for `key`, bumping its recency; null on miss.
  [[nodiscard]] std::shared_ptr<const JobOutput> lookup(std::uint64_t key);

  /// Insert (or refresh) `key`. Evicts the least-recently-used entry when
  /// the bound is exceeded.
  void insert(std::uint64_t key, std::shared_ptr<const JobOutput> value);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::size_t max_entries() const { return max_entries_; }
  [[nodiscard]] Count hits() const { return hits_; }
  [[nodiscard]] Count misses() const { return misses_; }
  [[nodiscard]] Count evictions() const { return evictions_; }

  /// Mirror hit/miss/eviction tallies into obs counters (all may be null).
  void bind_metrics(obs::Counter* hits, obs::Counter* misses,
                    obs::Counter* evictions);

 private:
  struct Entry {
    std::shared_ptr<const JobOutput> value;
    std::list<std::uint64_t>::iterator lru_pos;
  };

  std::size_t max_entries_;
  std::list<std::uint64_t> lru_;  ///< front = most recent
  std::map<std::uint64_t, Entry> entries_;
  Count hits_ = 0;
  Count misses_ = 0;
  Count evictions_ = 0;
  obs::Counter* hits_metric_ = nullptr;
  obs::Counter* misses_metric_ = nullptr;
  obs::Counter* evictions_metric_ = nullptr;
};

/// Path of the spec-hash marker a completed kShardedStore job writes next
/// to the manifest.
[[nodiscard]] std::string store_marker_path(const std::string& dir);

/// Record that `dir`'s store was produced by a spec hashing to `hash`.
/// Written after the shards and manifest, so a marker implies a complete
/// store. The marker seals the store's content: it records an FNV-1a
/// checksum of the manifest file and of every shard file, so a later probe
/// detects on-disk corruption instead of serving poison. The store type is
/// auto-detected: a compressed block store (src/store/) gets a v3 marker
/// over its `store.manifest` and `edges.<r>.pcs` files; a raw sharded
/// store (graph/sharded_io.h) keeps the v2 marker shape.
void write_store_marker(const std::string& dir, std::uint64_t hash);

/// Outcome of probing `dir` for a store serving `spec` (docs/robustness.md
/// §6). Exactly one of three shapes: a verified match; a plain miss (no
/// marker, a legacy v1 marker, or a different spec's store); or *corrupt* —
/// the marker claims this spec but the content fails verification
/// (checksum mismatch, torn manifest, wrong counts). Corrupt stores must
/// be quarantined, never served.
struct StoreProbe {
  bool match = false;
  bool corrupt = false;
  /// The marker claims a compressed block store (v3); load through
  /// store::ShardedGraphView rather than graph::load_all_shards.
  bool compressed = false;
  std::string detail;  ///< human-readable reason when corrupt
};

/// Verify-on-read probe. Never throws — every defect is a miss or a
/// corruption verdict, not an error.
[[nodiscard]] StoreProbe probe_store(const std::string& dir,
                                     const JobSpec& spec);

/// True when `dir` holds a complete, checksum-verified sharded store
/// produced by `spec` (probe_store(...).match).
[[nodiscard]] bool store_matches(const std::string& dir, const JobSpec& spec);

/// Quarantine a corrupt artifact: atomically rename `path` to
/// `path + ".quarantined"` (clobbering any previous quarantine) so later
/// probes miss instead of re-reading poison, while the bytes stay on disk
/// for post-mortem. Returns false when the rename fails (e.g. the file
/// vanished); never throws.
bool quarantine_file(const std::string& path);

/// Quarantine a corrupt store: rename its marker aside (the marker is the
/// store's validity seal, so the directory reads as a plain miss and the
/// next run regenerates in place). Returns false when no marker existed.
bool quarantine_store(const std::string& dir);

}  // namespace pagen::svc
