// pagen-lint: no-wallclock (see queue.h)
#include "svc/queue.h"

#include "util/error.h"

namespace pagen::svc {

JobQueue::JobQueue(std::size_t capacity) : capacity_(capacity) {
  PAGEN_CHECK_MSG(capacity >= 1, "job queue needs capacity >= 1");
}

bool JobQueue::push(JobId id, std::uint32_t priority, std::uint64_t seq,
                    std::uint64_t not_before, bool force) {
  if (!force && full()) return false;
  const Entry e{priority, seq, id, not_before};
  const bool fresh = ids_.emplace(id, e).second;
  PAGEN_CHECK_MSG(fresh, "job " << id << " queued twice");
  order_.insert(e);
  return true;
}

JobId JobQueue::peek(std::uint64_t now) const {
  for (const Entry& e : order_) {
    if (e.not_before <= now) return e.id;
  }
  return kNoJob;
}

JobId JobQueue::pop(std::uint64_t now) {
  for (auto it = order_.begin(); it != order_.end(); ++it) {
    if (it->not_before > now) continue;  // still in backoff
    const JobId id = it->id;
    ids_.erase(id);
    order_.erase(it);
    return id;
  }
  return kNoJob;
}

bool JobQueue::remove(JobId id) {
  const auto it = ids_.find(id);
  if (it == ids_.end()) return false;
  order_.erase(it->second);
  ids_.erase(it);
  return true;
}

std::uint64_t JobQueue::earliest_ready() const {
  std::uint64_t earliest = kAnyTick;
  for (const auto& [id, e] : ids_) {
    if (e.not_before < earliest) earliest = e.not_before;
  }
  return earliest;
}

JobId JobQueue::shed_below(std::uint32_t priority) {
  if (order_.empty()) return kNoJob;
  // Dispatch order is priority desc then seq asc, so the set's last entry
  // is exactly the shedding victim candidate: lowest priority, youngest.
  const auto last = std::prev(order_.end());
  if (last->priority >= priority) return kNoJob;
  const JobId id = last->id;
  ids_.erase(id);
  order_.erase(last);
  return id;
}

}  // namespace pagen::svc
