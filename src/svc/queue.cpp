// pagen-lint: no-wallclock (see queue.h)
#include "svc/queue.h"

#include "util/error.h"

namespace pagen::svc {

JobQueue::JobQueue(std::size_t capacity) : capacity_(capacity) {
  PAGEN_CHECK_MSG(capacity >= 1, "job queue needs capacity >= 1");
}

bool JobQueue::push(JobId id, std::uint32_t priority, std::uint64_t seq) {
  if (full()) return false;
  const Entry e{priority, seq, id};
  const bool fresh = ids_.emplace(id, e).second;
  PAGEN_CHECK_MSG(fresh, "job " << id << " queued twice");
  order_.insert(e);
  return true;
}

JobId JobQueue::peek() const {
  return order_.empty() ? kNoJob : order_.begin()->id;
}

JobId JobQueue::pop() {
  if (order_.empty()) return kNoJob;
  const Entry e = *order_.begin();
  order_.erase(order_.begin());
  ids_.erase(e.id);
  return e.id;
}

bool JobQueue::remove(JobId id) {
  const auto it = ids_.find(id);
  if (it == ids_.end()) return false;
  order_.erase(it->second);
  ids_.erase(it);
  return true;
}

}  // namespace pagen::svc
