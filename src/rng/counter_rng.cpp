#include "rng/counter_rng.h"

#include "util/error.h"

namespace pagen::rng {

std::uint64_t CounterRng::below(std::uint64_t bound, const Stream& s) const {
  PAGEN_CHECK_MSG(bound >= 1, "uniform bound must be positive");
  using u128 = unsigned __int128;
  std::uint64_t x = raw(s, 0);
  u128 m = static_cast<u128>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    // Rejection threshold per Lemire (2019): discard the biased low slice.
    const std::uint64_t threshold = -bound % bound;
    std::uint64_t round = 1;
    while (lo < threshold) {
      x = raw(s, round++);
      m = static_cast<u128>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::uint64_t CounterRng::range(std::uint64_t lo, std::uint64_t hi,
                                const Stream& s) const {
  PAGEN_CHECK_MSG(lo <= hi, "range lower bound exceeds upper bound");
  return lo + below(hi - lo + 1, s);
}

}  // namespace pagen::rng
