// Counter-based deterministic randomness.
//
// Every random decision in the preferential-attachment generators is a pure
// function of (seed, stream coordinates).  A stream coordinate is a 4-tuple
// (purpose, a, b, c): e.g. "the k drawn for node t's e-th edge on attempt r"
// is draw(kPurposePickK, t, e, r).  Because the value does not depend on
// which rank evaluates it or when, the parallel generator reproduces the
// sequential generator's choices bitwise, for any rank count and any
// partitioning scheme — the backbone of the exactness tests (DESIGN.md §5).
//
// The hash is a chained SplitMix64 permutation over the coordinates, which
// passes PractRand-style independence smoke tests (see tests/rng_test.cpp).
#pragma once

#include <cstdint>

#include "rng/splitmix.h"

namespace pagen::rng {

/// Coordinates of one logical random draw.
struct Stream {
  std::uint64_t purpose = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t c = 0;
};

/// Deterministic counter-based generator keyed by a 64-bit seed.
/// Immutable and freely shareable across ranks/threads.
class CounterRng {
 public:
  explicit constexpr CounterRng(std::uint64_t seed)
      : key_(splitmix64_mix(seed ^ 0x1905feeb1905feebULL)) {}

  /// Raw 64 uniform bits for the given stream coordinates and round.
  /// Distinct (stream, round) pairs give independent-looking outputs.
  [[nodiscard]] constexpr std::uint64_t raw(const Stream& s,
                                            std::uint64_t round = 0) const {
    std::uint64_t h = key_;
    h = splitmix64_mix(h ^ (s.purpose + 0x9e3779b97f4a7c15ULL));
    h = splitmix64_mix(h ^ s.a);
    h = splitmix64_mix(h ^ s.b);
    h = splitmix64_mix(h ^ (s.c + (round << 32)));
    return h;
  }

  /// Unbiased uniform integer in [0, bound), bound >= 1.
  /// Lemire multiply-shift with deterministic rejection rounds.
  [[nodiscard]] std::uint64_t below(std::uint64_t bound, const Stream& s) const;

  /// Unbiased uniform integer in [lo, hi] (inclusive).
  [[nodiscard]] std::uint64_t range(std::uint64_t lo, std::uint64_t hi,
                                    const Stream& s) const;

  /// Uniform double in [0, 1) with 53 random bits.
  [[nodiscard]] double unit(const Stream& s) const {
    return static_cast<double>(raw(s) >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial: true with probability p.
  [[nodiscard]] bool coin(double p, const Stream& s) const {
    return unit(s) < p;
  }

  [[nodiscard]] std::uint64_t key() const { return key_; }

 private:
  std::uint64_t key_;
};

}  // namespace pagen::rng
