// xoshiro256++ — fast stateful generator (Blackman & Vigna 2019).
//
// Used by the sequential baselines and the micro-benchmarks. Satisfies the
// C++ UniformRandomBitGenerator requirements so it composes with <random>.
#pragma once

#include <cstdint>

#include "rng/splitmix.h"

namespace pagen::rng {

class Xoshiro256pp {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256pp(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Unbiased uniform draw in [0, bound) via Lemire's method with rejection.
  std::uint64_t below(std::uint64_t bound) {
    using u128 = unsigned __int128;
    std::uint64_t x = (*this)();
    u128 m = static_cast<u128>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<u128>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1) with 53 random bits.
  double unit() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

}  // namespace pagen::rng
