// SplitMix64: the 64-bit finalizer mix and the stateful stream generator.
//
// The mix function is the core of pagen's counter-based randomness: it is a
// bijective avalanche permutation (Stafford/Steele variant 13) whose output
// on distinct inputs is statistically indistinguishable from independent
// uniform draws, which is exactly what the per-(node, edge, attempt) draw
// scheme requires.
#pragma once

#include <cstdint>

namespace pagen::rng {

/// One application of the SplitMix64 output permutation.
[[nodiscard]] constexpr std::uint64_t splitmix64_mix(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// Classic stateful SplitMix64 stream (Steele, Lea & Flood 2014). Used for
/// seeding other generators and wherever sequential draws suffice.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    state_ += 0x9e3779b97f4a7c15ULL;
    return splitmix64_mix(state_);
  }

 private:
  std::uint64_t state_;
};

}  // namespace pagen::rng
