#include "analysis/ks_distance.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/error.h"

namespace pagen::analysis {

double ks_distance(std::span<const Count> degrees_a,
                   std::span<const Count> degrees_b) {
  PAGEN_CHECK(!degrees_a.empty() && !degrees_b.empty());
  std::vector<Count> a(degrees_a.begin(), degrees_a.end());
  std::vector<Count> b(degrees_b.begin(), degrees_b.end());
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());

  const auto na = static_cast<double>(a.size());
  const auto nb = static_cast<double>(b.size());
  double sup = 0.0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const Count d = std::min(a[i], b[j]);
    while (i < a.size() && a[i] == d) ++i;
    while (j < b.size() && b[j] == d) ++j;
    const double fa = static_cast<double>(i) / na;
    const double fb = static_cast<double>(j) / nb;
    sup = std::max(sup, std::abs(fa - fb));
  }
  return sup;
}

double ks_critical_value(std::size_t na, std::size_t nb, double alpha) {
  PAGEN_CHECK(na > 0 && nb > 0);
  PAGEN_CHECK(alpha > 0.0 && alpha < 1.0);
  const double c = std::sqrt(-0.5 * std::log(alpha / 2.0));
  const auto dna = static_cast<double>(na);
  const auto dnb = static_cast<double>(nb);
  return c * std::sqrt((dna + dnb) / (dna * dnb));
}

}  // namespace pagen::analysis
