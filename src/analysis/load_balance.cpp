#include "analysis/load_balance.h"

#include "util/error.h"

namespace pagen::analysis {

std::string to_string(LoadMetric m) {
  switch (m) {
    case LoadMetric::kNodes:
      return "nodes";
    case LoadMetric::kRequestsSent:
      return "requests_sent";
    case LoadMetric::kRequestsReceived:
      return "requests_received";
    case LoadMetric::kResolvedSent:
      return "resolved_sent";
    case LoadMetric::kResolvedReceived:
      return "resolved_received";
    case LoadMetric::kTotalMessages:
      return "total_messages";
    case LoadMetric::kTotalLoad:
      return "total_load";
  }
  PAGEN_CHECK(false);
  return {};
}

std::vector<double> extract(std::span<const core::RankLoad> loads,
                            LoadMetric metric) {
  std::vector<double> out;
  out.reserve(loads.size());
  for (const core::RankLoad& l : loads) {
    Count v = 0;
    switch (metric) {
      case LoadMetric::kNodes:
        v = l.nodes;
        break;
      case LoadMetric::kRequestsSent:
        v = l.requests_sent;
        break;
      case LoadMetric::kRequestsReceived:
        v = l.requests_received;
        break;
      case LoadMetric::kResolvedSent:
        v = l.resolved_sent;
        break;
      case LoadMetric::kResolvedReceived:
        v = l.resolved_received;
        break;
      case LoadMetric::kTotalMessages:
        v = l.total_messages();
        break;
      case LoadMetric::kTotalLoad:
        v = l.total_load();
        break;
    }
    out.push_back(static_cast<double>(v));
  }
  return out;
}

LoadSummary summarize_metric(std::span<const core::RankLoad> loads,
                             LoadMetric metric) {
  const auto values = extract(loads, metric);
  LoadSummary s;
  s.metric = metric;
  s.summary = summarize(values);
  s.imbalance = imbalance(values);
  return s;
}

}  // namespace pagen::analysis
