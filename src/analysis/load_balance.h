// Load-balance summaries over per-rank load vectors (Fig. 7 / Section 4.6).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/load_stats.h"
#include "util/stats.h"

namespace pagen::analysis {

/// Extract one metric across ranks as doubles (for Summary/imbalance).
enum class LoadMetric {
  kNodes,
  kRequestsSent,
  kRequestsReceived,
  kResolvedSent,
  kResolvedReceived,
  kTotalMessages,
  kTotalLoad,
};

[[nodiscard]] std::string to_string(LoadMetric m);

[[nodiscard]] std::vector<double> extract(
    std::span<const core::RankLoad> loads, LoadMetric metric);

/// Summary + imbalance (max/mean) of one metric across ranks.
struct LoadSummary {
  LoadMetric metric = LoadMetric::kTotalLoad;
  Summary summary;
  double imbalance = 0.0;
};

[[nodiscard]] LoadSummary summarize_metric(
    std::span<const core::RankLoad> loads, LoadMetric metric);

}  // namespace pagen::analysis
