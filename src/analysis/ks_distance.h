// Kolmogorov–Smirnov distance between degree distributions.
//
// Used to quantify how closely an approximate generator (e.g. the
// Yoo–Henderson-style comparator in core/approx_pa.h) tracks the exact
// preferential-attachment distribution — the paper's criticism of the
// approximate prior work is precisely that its accuracy drifts with its
// control parameters.
#pragma once

#include <span>

#include "util/types.h"

namespace pagen::analysis {

/// sup_d | F_a(d) - F_b(d) | over the empirical degree CDFs of the two
/// samples. Range [0, 1]; 0 means identical empirical distributions.
[[nodiscard]] double ks_distance(std::span<const Count> degrees_a,
                                 std::span<const Count> degrees_b);

/// Two-sample KS critical value at significance alpha (asymptotic):
/// c(alpha) * sqrt((na + nb) / (na * nb)).
[[nodiscard]] double ks_critical_value(std::size_t na, std::size_t nb,
                                       double alpha = 0.01);

}  // namespace pagen::analysis
