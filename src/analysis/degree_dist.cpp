#include "analysis/degree_dist.h"

#include <algorithm>
#include <map>

#include "util/error.h"

namespace pagen::analysis {

std::vector<DegreePoint> degree_distribution(std::span<const Count> degrees) {
  std::map<Count, Count> counts;
  for (Count d : degrees) ++counts[d];
  std::vector<DegreePoint> out;
  out.reserve(counts.size());
  for (const auto& [degree, count] : counts) out.push_back({degree, count});
  return out;
}

std::vector<CcdfPoint> degree_ccdf(std::span<const Count> degrees) {
  const auto dist = degree_distribution(degrees);
  std::vector<CcdfPoint> out;
  out.reserve(dist.size());
  const auto n = static_cast<double>(degrees.size());
  PAGEN_CHECK(!degrees.empty());
  Count at_least = degrees.size();
  for (const DegreePoint& p : dist) {
    out.push_back({p.degree, static_cast<double>(at_least) / n});
    at_least -= p.count;
  }
  return out;
}

std::vector<LogBinnedPoint> log_binned_pdf(std::span<const Count> degrees,
                                           double bin_base) {
  LogHistogram hist(bin_base);
  for (Count d : degrees) {
    if (d > 0) hist.add(static_cast<double>(d));
  }
  std::vector<LogBinnedPoint> out;
  const auto total = static_cast<double>(hist.total());
  for (const HistBin& bin : hist.bins()) {
    out.push_back({bin.center,
                   static_cast<double>(bin.count) / (bin.width * total)});
  }
  return out;
}

}  // namespace pagen::analysis
