// Power-law exponent estimation.
//
// The paper reports "the exponent gamma of this power-law degree
// distribution is measured to be 2.7" for n = 1e9, x = 4.  We provide the
// two standard estimators: the discrete maximum-likelihood estimator
// (Clauset–Shalizi–Newman 2009) and a log–log least-squares fit on the
// log-binned PDF, which is what eyeballing a figure corresponds to.
#pragma once

#include <span>

#include "util/types.h"

namespace pagen::analysis {

struct PowerLawFit {
  double gamma = 0.0;     ///< estimated exponent
  Count d_min = 0;        ///< smallest degree included in the fit
  Count samples = 0;      ///< number of nodes with degree >= d_min
  double r_squared = 0.0; ///< regression fit quality (regression only)
};

/// Discrete MLE: gamma maximizes -gamma * sum(ln d) - N * ln zeta(gamma,
/// d_min) over degrees >= d_min. Solved by golden-section search on the
/// log-likelihood; zeta is the Hurwitz zeta via Euler–Maclaurin.
[[nodiscard]] PowerLawFit fit_gamma_mle(std::span<const Count> degrees,
                                        Count d_min);

/// Least-squares slope of log(density) vs log(degree) on the log-binned
/// PDF, restricted to degrees >= d_min. gamma = -slope.
[[nodiscard]] PowerLawFit fit_gamma_regression(std::span<const Count> degrees,
                                               Count d_min,
                                               double bin_base = 1.5);

/// Hurwitz zeta sum_{k>=a} k^-s for s > 1 (exposed for tests).
[[nodiscard]] double hurwitz_zeta(double s, Count a);

/// Automatic-d_min fit (Clauset–Shalizi–Newman): for each candidate d_min,
/// fit gamma by MLE and score the fitted model with the KS distance between
/// the empirical tail CDF and the model CDF zeta(gamma, d)/zeta(gamma,
/// d_min); return the fit minimizing the score.
struct AutoFit {
  PowerLawFit fit;
  double ks = 1.0;  ///< KS distance of the winning (d_min, gamma)
};
[[nodiscard]] AutoFit fit_gamma_auto(std::span<const Count> degrees,
                                     std::size_t max_candidates = 40);

}  // namespace pagen::analysis
