#include "analysis/powerlaw_fit.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "analysis/degree_dist.h"
#include "util/error.h"
#include "util/stats.h"

namespace pagen::analysis {

double hurwitz_zeta(double s, Count a) {
  PAGEN_CHECK_MSG(s > 1.0, "hurwitz_zeta needs s > 1");
  PAGEN_CHECK(a >= 1);
  // Direct sum for the head, Euler–Maclaurin for the tail from M:
  //   sum_{k>=M} k^-s ≈ M^{1-s}/(s-1) + M^-s/2 + s M^{-s-1}/12
  const Count m = a + 64;
  double head = 0.0;
  for (Count k = a; k < m; ++k) {
    head += std::pow(static_cast<double>(k), -s);
  }
  const auto dm = static_cast<double>(m);
  const double tail = std::pow(dm, 1.0 - s) / (s - 1.0) +
                      0.5 * std::pow(dm, -s) +
                      s * std::pow(dm, -s - 1.0) / 12.0;
  return head + tail;
}

PowerLawFit fit_gamma_mle(std::span<const Count> degrees, Count d_min) {
  PAGEN_CHECK(d_min >= 1);
  double sum_log = 0.0;
  Count samples = 0;
  for (Count d : degrees) {
    if (d >= d_min) {
      sum_log += std::log(static_cast<double>(d));
      ++samples;
    }
  }
  PAGEN_CHECK_MSG(samples >= 10, "too few tail samples for an MLE fit");

  const auto nll = [&](double gamma) {
    // Negative log-likelihood per sample (constants dropped).
    return gamma * sum_log / static_cast<double>(samples) +
           std::log(hurwitz_zeta(gamma, d_min));
  };

  // Golden-section search over a generous exponent range.
  constexpr double kPhi = 0.6180339887498949;
  double lo = 1.05, hi = 8.0;
  double x1 = hi - kPhi * (hi - lo);
  double x2 = lo + kPhi * (hi - lo);
  double f1 = nll(x1), f2 = nll(x2);
  for (int iter = 0; iter < 120; ++iter) {
    if (f1 < f2) {
      hi = x2;
      x2 = x1;
      f2 = f1;
      x1 = hi - kPhi * (hi - lo);
      f1 = nll(x1);
    } else {
      lo = x1;
      x1 = x2;
      f1 = f2;
      x2 = lo + kPhi * (hi - lo);
      f2 = nll(x2);
    }
  }

  PowerLawFit fit;
  fit.gamma = 0.5 * (lo + hi);
  fit.d_min = d_min;
  fit.samples = samples;
  return fit;
}

AutoFit fit_gamma_auto(std::span<const Count> degrees,
                       std::size_t max_candidates) {
  PAGEN_CHECK(max_candidates >= 1);
  // Candidate d_min values: the smallest distinct positive degrees.
  std::vector<Count> distinct;
  {
    std::vector<Count> sorted(degrees.begin(), degrees.end());
    std::sort(sorted.begin(), sorted.end());
    for (Count d : sorted) {
      if (d >= 1 && (distinct.empty() || distinct.back() != d)) {
        distinct.push_back(d);
      }
    }
  }
  PAGEN_CHECK_MSG(distinct.size() >= 2, "degenerate degree sequence");
  if (distinct.size() > max_candidates) distinct.resize(max_candidates);

  AutoFit best;
  for (Count d_min : distinct) {
    // Tail sample and its empirical CCDF over distinct tail degrees.
    std::vector<Count> tail;
    for (Count d : degrees) {
      if (d >= d_min) tail.push_back(d);
    }
    if (tail.size() < 50) break;  // tails get shorter as d_min grows
    PowerLawFit fit;
    try {
      fit = fit_gamma_mle(tail, d_min);
    } catch (const CheckError&) {
      break;
    }
    std::sort(tail.begin(), tail.end());
    const double z_min = hurwitz_zeta(fit.gamma, d_min);
    double ks = 0.0;
    std::size_t i = 0;
    while (i < tail.size()) {
      const Count d = tail[i];
      while (i < tail.size() && tail[i] == d) ++i;
      // Empirical and model P(D < d + 1) over the tail.
      const double empirical =
          static_cast<double>(i) / static_cast<double>(tail.size());
      const double model = 1.0 - hurwitz_zeta(fit.gamma, d + 1) / z_min;
      ks = std::max(ks, std::abs(empirical - model));
    }
    if (ks < best.ks) {
      best.ks = ks;
      best.fit = fit;
    }
  }
  PAGEN_CHECK_MSG(best.fit.samples > 0, "no candidate d_min admitted a fit");
  return best;
}

PowerLawFit fit_gamma_regression(std::span<const Count> degrees, Count d_min,
                                 double bin_base) {
  const auto pdf = log_binned_pdf(degrees, bin_base);
  std::vector<double> xs, ys;
  for (const LogBinnedPoint& p : pdf) {
    if (p.degree >= static_cast<double>(d_min) && p.density > 0.0) {
      xs.push_back(std::log(p.degree));
      ys.push_back(std::log(p.density));
    }
  }
  PAGEN_CHECK_MSG(xs.size() >= 3, "too few log-binned points for regression");
  const LinearFit lf = linear_fit(xs, ys);

  PowerLawFit fit;
  fit.gamma = -lf.slope;
  fit.d_min = d_min;
  fit.samples = xs.size();
  fit.r_squared = lf.r_squared;
  return fit;
}

}  // namespace pagen::analysis
