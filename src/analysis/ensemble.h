// Ensemble generation: statistics over independent replicas.
//
// A single generated network is one sample from the model; empirical
// network science reports ensemble means with error bars. This runner
// generates R replicas (seeds derived from a base seed), computes per-
// replica structural statistics, and summarizes them. Replicas run one
// after another, each on its own rank world.
#pragma once

#include <cstdint>

#include "baseline/pa_config.h"
#include "core/options.h"
#include "util/stats.h"
#include "util/types.h"

namespace pagen::analysis {

/// Per-replica statistics collected by the ensemble runner.
struct ReplicaStats {
  std::uint64_t seed = 0;
  Count edges = 0;
  Count max_degree = 0;
  double gamma = 0.0;        ///< MLE exponent at d_min = x (0 if fit failed)
  double assortativity = 0.0;
  Count components = 0;
};

struct EnsembleResult {
  std::vector<ReplicaStats> replicas;
  Summary max_degree;      ///< across replicas
  Summary gamma;           ///< across replicas with a successful fit
  Summary assortativity;
};

/// Generate `replicas` networks with seeds base_seed, base_seed+1, ... and
/// summarize their structure. config.seed is used as the base seed.
[[nodiscard]] EnsembleResult run_ensemble(const PaConfig& config,
                                          const core::ParallelOptions& options,
                                          int replicas);

}  // namespace pagen::analysis
