#include "analysis/ensemble.h"

#include <algorithm>

#include "analysis/powerlaw_fit.h"
#include "core/generate.h"
#include "graph/csr.h"
#include "graph/edge_list.h"
#include "graph/metrics.h"
#include "util/error.h"

namespace pagen::analysis {

EnsembleResult run_ensemble(const PaConfig& config,
                            const core::ParallelOptions& options,
                            int replicas) {
  PAGEN_CHECK(replicas >= 1);
  EnsembleResult result;
  result.replicas.reserve(static_cast<std::size_t>(replicas));

  std::vector<double> hubs, gammas, assorts;
  for (int r = 0; r < replicas; ++r) {
    PaConfig cfg = config;
    cfg.seed = config.seed + static_cast<std::uint64_t>(r);
    core::ParallelOptions opt = options;
    const auto gen = core::generate(cfg, opt);

    ReplicaStats stats;
    stats.seed = cfg.seed;
    stats.edges = gen.total_edges;

    const auto deg = graph::degree_sequence(gen.edges, cfg.n);
    stats.max_degree = *std::max_element(deg.begin(), deg.end());
    stats.components = graph::connected_components(gen.edges, cfg.n);
    try {
      stats.gamma = fit_gamma_mle(deg, std::max<Count>(cfg.x, 2)).gamma;
      gammas.push_back(stats.gamma);
    } catch (const CheckError&) {
      stats.gamma = 0.0;  // tail too small at this replica size
    }
    const graph::CsrGraph g(gen.edges, cfg.n);
    stats.assortativity = graph::degree_assortativity(g);

    hubs.push_back(static_cast<double>(stats.max_degree));
    assorts.push_back(stats.assortativity);
    result.replicas.push_back(stats);
  }

  result.max_degree = summarize(hubs);
  result.gamma = summarize(gammas);
  result.assortativity = summarize(assorts);
  return result;
}

}  // namespace pagen::analysis
