// Degree-distribution extraction (Fig. 4 of the paper).
#pragma once

#include <span>
#include <vector>

#include "util/histogram.h"
#include "util/types.h"

namespace pagen::analysis {

/// One (degree, count) point of the empirical degree PDF.
struct DegreePoint {
  Count degree = 0;
  Count count = 0;
};

/// Exact distribution: all distinct degrees with their node counts,
/// ascending. Degree-0 nodes are included (relevant for ER substrates).
[[nodiscard]] std::vector<DegreePoint> degree_distribution(
    std::span<const Count> degrees);

/// Complementary CDF point: fraction of nodes with degree >= `degree`.
struct CcdfPoint {
  Count degree = 0;
  double fraction = 0.0;
};
[[nodiscard]] std::vector<CcdfPoint> degree_ccdf(std::span<const Count> degrees);

/// Log-binned PDF for plotting heavy tails: each bin's count is divided by
/// its width and by the node total, yielding a density comparable across
/// bins (the standard presentation of the paper's log-log Figure 4).
struct LogBinnedPoint {
  double degree = 0.0;   ///< geometric bin center
  double density = 0.0;  ///< normalized frequency density
};
[[nodiscard]] std::vector<LogBinnedPoint> log_binned_pdf(
    std::span<const Count> degrees, double bin_base = 1.5);

}  // namespace pagen::analysis
