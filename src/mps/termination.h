// Counting termination detection for the asynchronous generation phase.
//
// Invariant (proved in DESIGN.md §5): a `request` in flight implies its
// sender still has an unresolved edge; a `resolved` in flight implies its
// receiver does.  Hence once every rank is locally done (all own edges
// resolved, all send buffers flushed) there are no data messages in flight,
// and it is safe to stop.  Protocol: each rank reports `done` to rank 0
// exactly once; rank 0, after collecting all P reports, broadcasts `stop`.
// Ranks keep serving incoming requests between their own completion and the
// receipt of `stop`.
#pragma once

#include <vector>

#include "mps/comm.h"
#include "util/error.h"

namespace pagen::mps {

class DoneDetector {
 public:
  /// @param done_tag tag of rank->0 completion notices
  /// @param stop_tag tag of the 0->all stop broadcast
  DoneDetector(Comm& comm, int done_tag, int stop_tag)
      : comm_(comm), done_tag_(done_tag), stop_tag_(stop_tag) {}

  /// Report this rank's local completion (call exactly once per
  /// incarnation, after flushing all outgoing data buffers).
  void notify_local_done() {
    PAGEN_CHECK_MSG(!notified_, "notify_local_done called twice");
    notified_ = true;
    if (comm_.rank() == 0) {
      absorb_done(0);
    } else {
      comm_.send_item<char>(0, done_tag_, 0);
    }
  }

  /// Offer an incoming envelope to the detector. Returns true if it was a
  /// termination-protocol message (and was consumed).
  bool handle(const Envelope& env) {
    if (env.tag == done_tag_) {
      PAGEN_CHECK_MSG(comm_.rank() == 0, "done notice delivered to non-root");
      absorb_done(env.src);
      return true;
    }
    if (env.tag == stop_tag_) {
      stopped_ = true;
      return true;
    }
    return false;
  }

  /// True once the stop broadcast has been received (or sent, on rank 0).
  [[nodiscard]] bool stopped() const { return stopped_; }

  /// True once this rank has reported its own completion.
  [[nodiscard]] bool notified() const { return notified_; }

  /// A restarted incarnation of `src` announced itself (core recovery
  /// protocol, kTagRecover). Whatever termination state was addressed to
  /// the dead incarnation is re-sent: rank 0 repeats `stop` if the run
  /// already stopped; a non-root rank repeats its own `done` when the
  /// restarted peer is the root (whose collected counts died with it).
  /// Duplicates are harmless — `stop` is idempotent and root dedups `done`
  /// per source.
  void on_peer_recover(Rank src) {
    if (comm_.rank() == 0) {
      if (stopped_) comm_.send_item<char>(src, stop_tag_, 0);
    } else if (src == 0 && notified_) {
      comm_.send_item<char>(0, done_tag_, 0);
    }
  }

 private:
  void absorb_done(Rank src) {
    // Per-source dedup: after a crash, a replaying rank legitimately
    // reports done a second time (and peers re-report after a root
    // restart); only the first report per rank counts toward P.
    if (done_seen_.empty()) {
      done_seen_.assign(static_cast<std::size_t>(comm_.size()), false);
    }
    if (done_seen_[static_cast<std::size_t>(src)]) return;
    done_seen_[static_cast<std::size_t>(src)] = true;
    ++dones_;
    PAGEN_CHECK(dones_ <= comm_.size());
    if (dones_ == comm_.size()) {
      for (Rank r = 1; r < comm_.size(); ++r) {
        comm_.send_item<char>(r, stop_tag_, 0);
      }
      stopped_ = true;
    }
  }

  Comm& comm_;
  int done_tag_;
  int stop_tag_;
  int dones_ = 0;
  std::vector<bool> done_seen_;
  bool notified_ = false;
  bool stopped_ = false;
};

}  // namespace pagen::mps
