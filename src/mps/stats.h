// Per-rank communication statistics.
//
// The paper measures load as "number of nodes per processor, number of
// outgoing messages, and number of incoming messages" (Section 3.5/4.6).
// The runtime tallies envelopes/bytes; algorithm-level request/resolved
// counts are tallied by the generator itself (core/load_stats.h).
#pragma once

#include "util/types.h"

namespace pagen::mps {

struct CommStats {
  Count envelopes_sent = 0;
  Count envelopes_received = 0;
  Count bytes_sent = 0;
  Count bytes_received = 0;
  Count collectives = 0;

  CommStats& operator+=(const CommStats& o) {
    envelopes_sent += o.envelopes_sent;
    envelopes_received += o.envelopes_received;
    bytes_sent += o.bytes_sent;
    bytes_received += o.bytes_received;
    collectives += o.collectives;
    return *this;
  }
};

}  // namespace pagen::mps
