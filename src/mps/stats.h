// Per-rank communication statistics.
//
// The paper measures load as "number of nodes per processor, number of
// outgoing messages, and number of incoming messages" (Section 3.5/4.6).
// The runtime tallies envelopes/bytes on both the send path
// (Comm::send_bytes) and the receive path (Comm::poll/poll_wait) — after a
// quiesced run the world-wide sums of the two sides agree exactly, which
// the engine tests assert. The per-destination and per-tag breakdowns feed
// the obs metrics exporter; algorithm-level request/resolved counts are
// tallied by the generator itself (core/load_stats.h).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "util/types.h"

namespace pagen::mps {

struct CommStats {
  Count envelopes_sent = 0;
  Count envelopes_received = 0;
  Count bytes_sent = 0;
  Count bytes_received = 0;
  Count collectives = 0;

  // Reliability / fault-injection counters (mps/reliable.h, mps/fault.h).
  // Kept separate from the envelope volumes above: retransmissions, acks
  // and injected copies are transport artifacts, not algorithm traffic, so
  // folding them in would inflate the paper's per-processor message-load
  // figures. All zero in fault-free best-effort runs.
  Count retransmits = 0;         ///< physical re-sends of unacked envelopes
  Count acks_sent = 0;           ///< cumulative-ack envelopes emitted
  Count acks_received = 0;       ///< cumulative-ack envelopes consumed
  Count duplicates_dropped = 0;  ///< receiver-side dedup / stale-epoch drops
  Count injected_drops = 0;      ///< envelopes the fault injector discarded
  Count injected_dups = 0;       ///< extra copies the fault injector created

  /// Causal stamps attached on the send path (obs causal tracing). Zero in
  /// untraced runs — the zero-cost-disabled bench asserts exactly that.
  /// Kept out of bytes_sent: stamps are observer metadata, not traffic.
  Count causal_stamps = 0;

  /// Envelopes sent per destination rank (index = destination). Sized by
  /// Comm to the world size; default-empty when hand-constructed.
  std::vector<Count> envelopes_to;

  /// Envelopes sent / received per message tag (protocol tags from
  /// core/genrt/protocol.h, plus any user tags).
  std::map<int, Count> sent_by_tag;
  std::map<int, Count> received_by_tag;

  /// Cross-rank reduction: every field sums (all are volumes, no
  /// high-water marks here); `envelopes_to` widens to the longer vector.
  CommStats& operator+=(const CommStats& o) {
    envelopes_sent += o.envelopes_sent;
    envelopes_received += o.envelopes_received;
    bytes_sent += o.bytes_sent;
    bytes_received += o.bytes_received;
    collectives += o.collectives;
    retransmits += o.retransmits;
    acks_sent += o.acks_sent;
    acks_received += o.acks_received;
    duplicates_dropped += o.duplicates_dropped;
    injected_drops += o.injected_drops;
    injected_dups += o.injected_dups;
    causal_stamps += o.causal_stamps;
    if (envelopes_to.size() < o.envelopes_to.size()) {
      envelopes_to.resize(o.envelopes_to.size(), 0);
    }
    for (std::size_t i = 0; i < o.envelopes_to.size(); ++i) {
      envelopes_to[i] += o.envelopes_to[i];
    }
    for (const auto& [tag, n] : o.sent_by_tag) sent_by_tag[tag] += n;
    for (const auto& [tag, n] : o.received_by_tag) received_by_tag[tag] += n;
    return *this;
  }
};

/// Render a rank index as a fixed-width metric-name suffix ("0007") so the
/// exporter's lexicographic name order is also numeric order.
[[nodiscard]] inline std::string metric_rank_suffix(std::size_t r) {
  std::string s = std::to_string(r);
  return s.size() >= 4 ? s : std::string(4 - s.size(), '0') + s;
}

/// Fold one rank's comm counters into its metrics registry under "mps.*".
inline void record_metrics(obs::MetricsRegistry& reg, const CommStats& s) {
  reg.counter("mps.envelopes_sent").add(s.envelopes_sent);
  reg.counter("mps.envelopes_received").add(s.envelopes_received);
  reg.counter("mps.bytes_sent").add(s.bytes_sent);
  reg.counter("mps.bytes_received").add(s.bytes_received);
  reg.counter("mps.collectives").add(s.collectives);
  // Reliability counters appear only when the layer did something, so
  // fault-free metric exports are byte-identical to the pre-fault runtime.
  if (s.retransmits != 0) reg.counter("mps.retransmits").add(s.retransmits);
  if (s.acks_sent != 0) reg.counter("mps.acks_sent").add(s.acks_sent);
  if (s.acks_received != 0) {
    reg.counter("mps.acks_received").add(s.acks_received);
  }
  if (s.duplicates_dropped != 0) {
    reg.counter("mps.duplicates_dropped").add(s.duplicates_dropped);
  }
  if (s.injected_drops != 0) {
    reg.counter("mps.injected_drops").add(s.injected_drops);
  }
  if (s.injected_dups != 0) {
    reg.counter("mps.injected_dups").add(s.injected_dups);
  }
  if (s.causal_stamps != 0) {
    reg.counter("mps.causal_stamps").add(s.causal_stamps);
  }
  for (std::size_t dst = 0; dst < s.envelopes_to.size(); ++dst) {
    if (s.envelopes_to[dst] == 0) continue;
    reg.counter("mps.envelopes_to." + metric_rank_suffix(dst))
        .add(s.envelopes_to[dst]);
  }
  for (const auto& [tag, n] : s.sent_by_tag) {
    reg.counter("mps.sent_by_tag." + std::to_string(tag)).add(n);
  }
  for (const auto& [tag, n] : s.received_by_tag) {
    reg.counter("mps.received_by_tag." + std::to_string(tag)).add(n);
  }
}

}  // namespace pagen::mps
