// Message envelope and POD packing helpers for the mps runtime.
//
// The runtime moves opaque byte payloads between ranks; algorithm-level
// message structs (request/resolved, Section 3.2–3.3 of the paper) are
// trivially-copyable PODs packed contiguously into one envelope per
// (destination, tag) batch — this is the "message buffering" the paper's
// Section 3.5 calls out as essential at scale.
//
// pagen-lint: hot-path — pack/unpack run once per item sent or received.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

#include "util/error.h"
#include "util/types.h"

namespace pagen::mps {

/// Compact causal context for one packed item inside an envelope. When
/// causal tracing is enabled (obs::Config::causal) the sender attaches one
/// stamp per packed item; the receiver uses it to continue the dependency
/// chain (`F_t -> F_k -> ...`, Section 3.3) across ranks and to bind
/// Perfetto flow events to the originating request. `origin < 0` marks an
/// absent stamp, so padded slots in a mixed batch are ignored downstream.
struct CausalStamp {
  std::uint64_t root = 0;  ///< global slot id of the chain's root request
  Rank origin = -1;        ///< rank that issued the root request
  std::uint32_t hop = 0;   ///< chain depth carried by this message
};

/// One delivered message batch. `payload` holds `payload.size() / sizeof(T)`
/// packed items of the tag's element type T.
struct Envelope {
  Rank src = -1;
  int tag = 0;
  std::vector<std::byte> payload;

  /// Per-(src, dst, tag) send sequence number. Stamped by the reliability
  /// layer (mps/reliable.h) when it is enabled — receiver-side dedup and
  /// reordering key on it — and otherwise by the invariant checker when
  /// PAGEN_CHECK_INVARIANTS is on (0 in plain Release builds). The checker
  /// asserts these arrive in order — the non-overtaking delivery guarantee
  /// (mps/invariant.h). Not part of any user protocol.
  std::uint64_t seq = 0;

  /// Sender incarnation number. 0 until the sending rank is respawned after
  /// an injected crash; each respawn bumps it. Receivers use it to discard
  /// stale traffic from dead incarnations and to reset per-flow sequence
  /// expectations (docs/robustness.md).
  std::uint32_t epoch = 0;

  /// Receiver incarnation this envelope was addressed to, as known by the
  /// sender when it (re)transmitted (reliable mode only). A restarted
  /// receiver discards envelopes addressed to its dead incarnation — under
  /// reordering, arrival order cannot be trusted to resynchronize flow
  /// sequences, so the stamp is the only sound filter (mps/reliable.h).
  std::uint32_t dest_epoch = 0;

  /// One causal stamp per packed payload item, in item order. Empty unless
  /// the sender runs with causal tracing on — an empty vector allocates
  /// nothing and adds zero wire bytes, so the disabled path stays free.
  /// Stamps travel beside the payload, never inside it: payload byte counts
  /// (CommStats::bytes_sent) are identical with tracing on or off.
  std::vector<CausalStamp> causal;
};

/// Reserved tag broadcast by the engine when a rank dies: Comm::poll and
/// poll_wait translate it into a WorldAborted exception so peers blocked on
/// data traffic unwind instead of deadlocking. Never use for user traffic.
inline constexpr int kAbortTag = -559038737;  // 0xDEADBEEF as signed

/// Reserved tag of the reliability layer's cumulative acknowledgements
/// (mps/reliable.h). Consumed inside Comm::poll/poll_wait, never surfaced
/// to user code, and exempt from fault injection and the invariant ledger.
inline constexpr int kAckTag = -889275714;  // 0xCAFEBABE as signed

/// Append the bytes of `items` to `out`.
template <typename T>
void pack(std::vector<std::byte>& out, std::span<const T> items) {
  static_assert(std::is_trivially_copyable_v<T>);
  const std::size_t old = out.size();
  out.resize(old + items.size_bytes());
  if (!items.empty()) {
    std::memcpy(out.data() + old, items.data(), items.size_bytes());
  }
}

/// Append one item.
template <typename T>
void pack_one(std::vector<std::byte>& out, const T& item) {
  pack(out, std::span<const T>(&item, 1));
}

/// Decode a payload as packed items of T. The payload size must be an exact
/// multiple of sizeof(T). Returns a by-value vector: payload alignment is not
/// guaranteed to satisfy alignof(T), so items are memcpy'd out.
template <typename T>
[[nodiscard]] std::vector<T> unpack(std::span<const std::byte> payload) {
  static_assert(std::is_trivially_copyable_v<T>);
  PAGEN_CHECK_MSG(payload.size() % sizeof(T) == 0,
                  "payload size " << payload.size()
                                  << " not a multiple of element size "
                                  << sizeof(T));
  std::vector<T> items(payload.size() / sizeof(T));
  if (!items.empty()) {
    std::memcpy(items.data(), payload.data(), payload.size());
  }
  return items;
}

/// Visit packed items in place without copying the whole batch.
template <typename T, typename Fn>
void for_each_packed(std::span<const std::byte> payload, Fn&& fn) {
  static_assert(std::is_trivially_copyable_v<T>);
  PAGEN_CHECK(payload.size() % sizeof(T) == 0);
  const std::size_t n = payload.size() / sizeof(T);
  for (std::size_t i = 0; i < n; ++i) {
    T item;
    std::memcpy(&item, payload.data() + i * sizeof(T), sizeof(T));
    fn(item);
  }
}

}  // namespace pagen::mps
