// Comm: the per-rank endpoint of an mps world.
//
// A rank function receives a Comm& and may only touch its own private state
// plus this endpoint — the distributed-memory discipline.  Point-to-point
// sends enqueue envelopes into the destination's mailbox; polls drain the
// rank's own mailbox; collectives rendezvous through CollectiveContext.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "mps/collectives.h"
#include "mps/mailbox.h"
#include "mps/message.h"
#include "mps/reliable.h"
#include "mps/stats.h"
#include "util/types.h"

namespace pagen::obs {
class RankObserver;
}

namespace pagen::mps {

class World;

class Comm {
 public:
  /// @param ob this rank's observation endpoint, or null (the default) for
  ///   the uninstrumented fast path.
  Comm(World& world, Rank rank, obs::RankObserver* ob = nullptr);

  Comm(const Comm&) = delete;
  Comm& operator=(const Comm&) = delete;

  [[nodiscard]] Rank rank() const { return rank_; }
  [[nodiscard]] int size() const;

  /// This endpoint's incarnation number: 0 on first spawn, bumped each time
  /// the engine respawns the rank after an injected crash. Rank bodies use
  /// it to decide between a cold start and checkpoint recovery.
  [[nodiscard]] std::uint32_t incarnation() const;

  /// Send an opaque payload to `dst` (self-send allowed). FIFO per
  /// (src, dst) pair.
  void send_bytes(Rank dst, int tag, std::vector<std::byte> payload);

  /// Like send_bytes but attaches one causal stamp per packed payload item
  /// (obs causal tracing). Stamps ride the envelope's side channel — they
  /// never enter the payload, so bytes_sent is unchanged — and survive
  /// retransmission when the reliable channel re-sends the envelope.
  void send_bytes(Rank dst, int tag, std::vector<std::byte> payload,
                  std::vector<CausalStamp> stamps);

  /// Pack `items` and send as one envelope.
  template <typename T>
  void send_items(Rank dst, int tag, std::span<const T> items) {
    std::vector<std::byte> payload;
    pack(payload, items);
    send_bytes(dst, tag, std::move(payload));
  }

  /// Pack `items` and send as one causally stamped envelope; `stamps` must
  /// pair with `items` by index (stamps.size() == items.size()).
  template <typename T>
  void send_items(Rank dst, int tag, std::span<const T> items,
                  std::vector<CausalStamp> stamps) {
    std::vector<std::byte> payload;
    pack(payload, items);
    send_bytes(dst, tag, std::move(payload), std::move(stamps));
  }

  template <typename T>
  void send_item(Rank dst, int tag, const T& item) {
    send_items(dst, tag, std::span<const T>(&item, 1));
  }

  /// Drain pending envelopes into `out` (appended). Returns true if any.
  bool poll(std::vector<Envelope>& out);

  /// Like poll() but blocks up to `timeout` for the first envelope.
  bool poll_wait(std::vector<Envelope>& out, std::chrono::milliseconds timeout);

  // --- Collectives (every rank must participate, in the same order) ---
  void barrier();
  [[nodiscard]] std::uint64_t allreduce_sum(std::uint64_t v);
  [[nodiscard]] std::uint64_t allreduce_max(std::uint64_t v);
  [[nodiscard]] double allreduce_sum_double(double v);
  [[nodiscard]] std::vector<std::uint64_t> allgather(std::uint64_t v);
  /// Variable-size allgather: every rank deposits a byte blob, all receive
  /// all blobs indexed by rank.
  [[nodiscard]] std::vector<std::vector<std::byte>> allgather_bytes(
      std::vector<std::byte> blob);
  /// Broadcast root's value to everyone.
  [[nodiscard]] std::uint64_t broadcast(std::uint64_t v, Rank root);

  [[nodiscard]] CommStats& stats() { return stats_; }
  [[nodiscard]] const CommStats& stats() const { return stats_; }

  /// This rank's observation endpoint (null when observation is off).
  [[nodiscard]] obs::RankObserver* obs() const { return obs_; }

  /// Envelopes currently queued in this rank's mailbox (diagnostic
  /// snapshot; racy by nature). Feeds the mailbox-depth gauge.
  [[nodiscard]] std::size_t pending() const;

 private:
  /// Count newly drained envelopes. Drain-safe abort: every data envelope
  /// in the batch is accounted (stats + invariant in-flight) first, then an
  /// abort envelope — compacted out of `out` — raises WorldAborted, so the
  /// unwind never leaves half a batch unledgered.
  void account_received(std::vector<Envelope>& out, std::size_t before);

  /// wait_drain bracketed by the invariant checker's wait hooks (debug
  /// builds): stall-clock bookkeeping plus the deadlock probe on a
  /// fruitless timeout. Compiles down to plain wait_drain in Release.
  bool wait_drain_checked(std::vector<Envelope>& out,
                          std::chrono::milliseconds timeout);

  /// Reliable-mode blocking wait: chunked mailbox waits interleaved with
  /// ingest filtering and retransmit-timer servicing, until a *deliverable*
  /// envelope arrives or `timeout` expires. A wakeup that dedup filters to
  /// nothing (only duplicates) does not count as progress.
  bool wait_filtered(std::vector<Envelope>& out, std::size_t before,
                     std::chrono::milliseconds timeout);

  /// Move any collective-time deliveries (stash_) into `out`. Returns true
  /// when anything moved. The caller still owes account_received for them.
  bool take_stash(std::vector<Envelope>& out);

  /// All collectives funnel through here: tallies the stat and wraps the
  /// rendezvous in a trace span named after the operation. In reliable mode
  /// the rendezvous is *serviced*: while blocked, the rank keeps ingesting
  /// (acks, dedup) and firing retransmission timers so peers still polling
  /// for repaired traffic are never starved by a rank that has moved on to
  /// a barrier (docs/robustness.md §2).
  std::vector<std::vector<std::byte>> exchange(const char* op,
                                               std::vector<std::byte> blob);

  World& world_;
  Rank rank_;
  obs::RankObserver* obs_;
  CommStats stats_;
  /// Reliability endpoint, present when the World runs in reliable mode.
  std::unique_ptr<ReliableChannel> reliable_;
  /// Raw-drain staging buffer for the reliable poll paths.
  std::vector<Envelope> scratch_;
  /// Data envelopes delivered while this rank was blocked inside a
  /// *serviced* collective (exchange_serviced keeps the reliable channel's
  /// ingest/retransmit loop alive there). Surfaced — and only then counted
  /// — by the next poll/poll_wait.
  std::vector<Envelope> stash_;
};

}  // namespace pagen::mps
