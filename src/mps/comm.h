// Comm: the per-rank endpoint of an mps world.
//
// A rank function receives a Comm& and may only touch its own private state
// plus this endpoint — the distributed-memory discipline.  Point-to-point
// sends enqueue envelopes into the destination's mailbox; polls drain the
// rank's own mailbox; collectives rendezvous through CollectiveContext.
#pragma once

#include <chrono>
#include <cstdint>
#include <span>
#include <vector>

#include "mps/collectives.h"
#include "mps/mailbox.h"
#include "mps/message.h"
#include "mps/stats.h"
#include "util/types.h"

namespace pagen::obs {
class RankObserver;
}

namespace pagen::mps {

class World;

class Comm {
 public:
  /// @param ob this rank's observation endpoint, or null (the default) for
  ///   the uninstrumented fast path.
  Comm(World& world, Rank rank, obs::RankObserver* ob = nullptr);

  Comm(const Comm&) = delete;
  Comm& operator=(const Comm&) = delete;

  [[nodiscard]] Rank rank() const { return rank_; }
  [[nodiscard]] int size() const;

  /// Send an opaque payload to `dst` (self-send allowed). FIFO per
  /// (src, dst) pair.
  void send_bytes(Rank dst, int tag, std::vector<std::byte> payload);

  /// Pack `items` and send as one envelope.
  template <typename T>
  void send_items(Rank dst, int tag, std::span<const T> items) {
    std::vector<std::byte> payload;
    pack(payload, items);
    send_bytes(dst, tag, std::move(payload));
  }

  template <typename T>
  void send_item(Rank dst, int tag, const T& item) {
    send_items(dst, tag, std::span<const T>(&item, 1));
  }

  /// Drain pending envelopes into `out` (appended). Returns true if any.
  bool poll(std::vector<Envelope>& out);

  /// Like poll() but blocks up to `timeout` for the first envelope.
  bool poll_wait(std::vector<Envelope>& out, std::chrono::milliseconds timeout);

  // --- Collectives (every rank must participate, in the same order) ---
  void barrier();
  [[nodiscard]] std::uint64_t allreduce_sum(std::uint64_t v);
  [[nodiscard]] std::uint64_t allreduce_max(std::uint64_t v);
  [[nodiscard]] double allreduce_sum_double(double v);
  [[nodiscard]] std::vector<std::uint64_t> allgather(std::uint64_t v);
  /// Variable-size allgather: every rank deposits a byte blob, all receive
  /// all blobs indexed by rank.
  [[nodiscard]] std::vector<std::vector<std::byte>> allgather_bytes(
      std::vector<std::byte> blob);
  /// Broadcast root's value to everyone.
  [[nodiscard]] std::uint64_t broadcast(std::uint64_t v, Rank root);

  [[nodiscard]] CommStats& stats() { return stats_; }
  [[nodiscard]] const CommStats& stats() const { return stats_; }

  /// This rank's observation endpoint (null when observation is off).
  [[nodiscard]] obs::RankObserver* obs() const { return obs_; }

  /// Envelopes currently queued in this rank's mailbox (diagnostic
  /// snapshot; racy by nature). Feeds the mailbox-depth gauge.
  [[nodiscard]] std::size_t pending() const;

 private:
  /// Count newly drained envelopes; throws WorldAborted on an abort tag.
  void account_received(std::vector<Envelope>& out, std::size_t before);

  /// wait_drain bracketed by the invariant checker's wait hooks (debug
  /// builds): stall-clock bookkeeping plus the deadlock probe on a
  /// fruitless timeout. Compiles down to plain wait_drain in Release.
  bool wait_drain_checked(std::vector<Envelope>& out,
                          std::chrono::milliseconds timeout);

  /// All collectives funnel through here: tallies the stat and wraps the
  /// rendezvous in a trace span named after the operation.
  std::vector<std::vector<std::byte>> exchange(const char* op,
                                               std::vector<std::byte> blob);

  World& world_;
  Rank rank_;
  obs::RankObserver* obs_;
  CommStats stats_;
};

}  // namespace pagen::mps
