// Comm: the per-rank endpoint of an mps world.
//
// A rank function receives a Comm& and may only touch its own private state
// plus this endpoint — the distributed-memory discipline.  Point-to-point
// sends enqueue envelopes into the destination's mailbox; polls drain the
// rank's own mailbox; collectives rendezvous through CollectiveContext.
#pragma once

#include <chrono>
#include <cstdint>
#include <span>
#include <vector>

#include "mps/collectives.h"
#include "mps/mailbox.h"
#include "mps/message.h"
#include "mps/stats.h"
#include "util/types.h"

namespace pagen::mps {

class World;

class Comm {
 public:
  Comm(World& world, Rank rank);

  Comm(const Comm&) = delete;
  Comm& operator=(const Comm&) = delete;

  [[nodiscard]] Rank rank() const { return rank_; }
  [[nodiscard]] int size() const;

  /// Send an opaque payload to `dst` (self-send allowed). FIFO per
  /// (src, dst) pair.
  void send_bytes(Rank dst, int tag, std::vector<std::byte> payload);

  /// Pack `items` and send as one envelope.
  template <typename T>
  void send_items(Rank dst, int tag, std::span<const T> items) {
    std::vector<std::byte> payload;
    pack(payload, items);
    send_bytes(dst, tag, std::move(payload));
  }

  template <typename T>
  void send_item(Rank dst, int tag, const T& item) {
    send_items(dst, tag, std::span<const T>(&item, 1));
  }

  /// Drain pending envelopes into `out` (appended). Returns true if any.
  bool poll(std::vector<Envelope>& out);

  /// Like poll() but blocks up to `timeout` for the first envelope.
  bool poll_wait(std::vector<Envelope>& out, std::chrono::milliseconds timeout);

  // --- Collectives (every rank must participate, in the same order) ---
  void barrier();
  [[nodiscard]] std::uint64_t allreduce_sum(std::uint64_t v);
  [[nodiscard]] std::uint64_t allreduce_max(std::uint64_t v);
  [[nodiscard]] double allreduce_sum_double(double v);
  [[nodiscard]] std::vector<std::uint64_t> allgather(std::uint64_t v);
  /// Variable-size allgather: every rank deposits a byte blob, all receive
  /// all blobs indexed by rank.
  [[nodiscard]] std::vector<std::vector<std::byte>> allgather_bytes(
      std::vector<std::byte> blob);
  /// Broadcast root's value to everyone.
  [[nodiscard]] std::uint64_t broadcast(std::uint64_t v, Rank root);

  [[nodiscard]] CommStats& stats() { return stats_; }
  [[nodiscard]] const CommStats& stats() const { return stats_; }

 private:
  /// Count newly drained envelopes; throws WorldAborted on an abort tag.
  void account_received(std::vector<Envelope>& out, std::size_t before);

  World& world_;
  Rank rank_;
  CommStats stats_;
};

}  // namespace pagen::mps
