#include "mps/collectives.h"

#include "util/error.h"

namespace pagen::mps {

CollectiveContext::CollectiveContext(int nranks)
    : nranks_(nranks), slots_(static_cast<std::size_t>(nranks)) {
  PAGEN_CHECK(nranks >= 1);
}

std::vector<std::vector<std::byte>> CollectiveContext::exchange(
    Rank rank, std::vector<std::byte> in) {
  PAGEN_CHECK(rank >= 0 && rank < nranks_);
  std::unique_lock lock(mutex_);
  if (poisoned_) throw WorldAborted();
  slots_[static_cast<std::size_t>(rank)] = std::move(in);
  const std::uint64_t my_generation = generation_;
  if (++arrived_ == nranks_) {
    // Last arriver publishes the round and opens the next one. `published_`
    // cannot be overwritten until every rank of this round has re-entered
    // exchange(), which requires them to first copy it out below.
    published_ = std::move(slots_);
    slots_.assign(static_cast<std::size_t>(nranks_), {});
    arrived_ = 0;
    ++generation_;
    cv_.notify_all();
  } else {
    cv_.wait(lock,
             [&] { return generation_ != my_generation || poisoned_; });
    if (generation_ == my_generation && poisoned_) throw WorldAborted();
  }
  return published_;
}

std::vector<std::vector<std::byte>> CollectiveContext::exchange_serviced(
    Rank rank, std::vector<std::byte> in, std::chrono::milliseconds tick,
    const std::function<void()>& service) {
  PAGEN_CHECK(rank >= 0 && rank < nranks_);
  std::unique_lock lock(mutex_);
  if (poisoned_) throw WorldAborted();
  slots_[static_cast<std::size_t>(rank)] = std::move(in);
  const std::uint64_t my_generation = generation_;
  if (++arrived_ == nranks_) {
    published_ = std::move(slots_);
    slots_.assign(static_cast<std::size_t>(nranks_), {});
    arrived_ = 0;
    ++generation_;
    cv_.notify_all();
    return published_;
  }
  for (;;) {
    if (cv_.wait_for(lock, tick, [&] {
          return generation_ != my_generation || poisoned_;
        })) {
      if (generation_ == my_generation && poisoned_) throw WorldAborted();
      return published_;
    }
    // Round not complete yet: run the service hook unlocked so it can touch
    // mailboxes and peers without holding up other ranks' arrivals.
    lock.unlock();
    service();
    lock.lock();
  }
}

void CollectiveContext::poison() {
  {
    std::lock_guard lock(mutex_);
    poisoned_ = true;
  }
  cv_.notify_all();
}

}  // namespace pagen::mps
