// Per-destination message aggregation ("message buffering", Section 3.5).
//
// The paper: "If a Processor i has multiple messages destined to the same
// processor ... Processor i can combine them into a single message by
// buffering them ... Further message buffering reduces overhead of packet
// header and thus improves efficiency."  Each rank keeps one buffer per
// destination; items are flushed as a single envelope when the buffer
// reaches capacity or on an explicit flush (the RRP deadlock-avoidance rule
// force-flushes resolved buffers after every received batch).
//
// pagen-lint: hot-path — add() runs once per protocol message.
#pragma once

#include <cstddef>
#include <vector>

#include "mps/comm.h"
#include "util/error.h"
#include "util/types.h"

namespace pagen::mps {

template <typename T>
class SendBuffer {
 public:
  /// @param capacity items per destination before an automatic flush.
  ///   Capacity 1 disables aggregation (every item is its own envelope),
  ///   which the buffering ablation bench uses as its baseline.
  SendBuffer(Comm& comm, int tag, std::size_t capacity)
      : comm_(comm),
        tag_(tag),
        capacity_(capacity),
        buffers_(static_cast<std::size_t>(comm.size())),
        stamps_(static_cast<std::size_t>(comm.size())) {
    PAGEN_CHECK(capacity >= 1);
  }

  /// Queue one item for `dst`; flushes automatically at capacity.
  void add(Rank dst, const T& item) { add_impl(dst, item, nullptr); }

  /// Queue one causally stamped item for `dst`. Stamped and plain adds may
  /// mix on the same destination (recovery re-offers are unstamped): once
  /// any stamp exists, the stamp vector is padded with absent stamps
  /// (origin < 0) so stamp i always pairs with payload item i.
  void add_stamped(Rank dst, const T& item, const CausalStamp& stamp) {
    add_impl(dst, item, &stamp);
  }

  /// Send `dst`'s pending items (if any) as one envelope.
  void flush(Rank dst) {
    auto& buf = buffers_[static_cast<std::size_t>(dst)];
    if (buf.empty()) return;
    auto& stamps = stamps_[static_cast<std::size_t>(dst)];
    if (stamps.empty()) {
      comm_.send_items<T>(dst, tag_, buf);
    } else {
      stamps.resize(buf.size());
      comm_.send_items<T>(dst, tag_, buf, std::move(stamps));
      stamps.clear();
    }
    ++flushes_;
    buf.clear();
  }

  /// Flush every destination.
  void flush_all() {
    for (Rank d = 0; d < comm_.size(); ++d) flush(d);
  }

  /// True when no destination has pending items.
  [[nodiscard]] bool empty() const {
    for (const auto& buf : buffers_) {
      if (!buf.empty()) return false;
    }
    return true;
  }

  [[nodiscard]] Count items_added() const { return items_added_; }
  [[nodiscard]] Count flushes() const { return flushes_; }

 private:
  void add_impl(Rank dst, const T& item, const CausalStamp* stamp) {
    auto& buf = buffers_[static_cast<std::size_t>(dst)];
    buf.push_back(item);
    ++items_added_;
    auto& stamps = stamps_[static_cast<std::size_t>(dst)];
    if (stamp != nullptr || !stamps.empty()) {
      stamps.resize(buf.size() - 1);  // pad earlier unstamped items as absent
      stamps.push_back(stamp != nullptr ? *stamp : CausalStamp{});
    }
    if (buf.size() >= capacity_) flush(dst);
  }

  Comm& comm_;
  int tag_;
  std::size_t capacity_;
  std::vector<std::vector<T>> buffers_;
  /// Parallel per-destination causal stamps; empty vector = untraced batch.
  std::vector<std::vector<CausalStamp>> stamps_;
  Count items_added_ = 0;
  Count flushes_ = 0;
};

}  // namespace pagen::mps
