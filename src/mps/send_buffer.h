// Per-destination message aggregation ("message buffering", Section 3.5).
//
// The paper: "If a Processor i has multiple messages destined to the same
// processor ... Processor i can combine them into a single message by
// buffering them ... Further message buffering reduces overhead of packet
// header and thus improves efficiency."  Each rank keeps one buffer per
// destination; items are flushed as a single envelope when the buffer
// reaches capacity or on an explicit flush (the RRP deadlock-avoidance rule
// force-flushes resolved buffers after every received batch).
#pragma once

#include <cstddef>
#include <vector>

#include "mps/comm.h"
#include "util/error.h"
#include "util/types.h"

namespace pagen::mps {

template <typename T>
class SendBuffer {
 public:
  /// @param capacity items per destination before an automatic flush.
  ///   Capacity 1 disables aggregation (every item is its own envelope),
  ///   which the buffering ablation bench uses as its baseline.
  SendBuffer(Comm& comm, int tag, std::size_t capacity)
      : comm_(comm),
        tag_(tag),
        capacity_(capacity),
        buffers_(static_cast<std::size_t>(comm.size())) {
    PAGEN_CHECK(capacity >= 1);
  }

  /// Queue one item for `dst`; flushes automatically at capacity.
  void add(Rank dst, const T& item) {
    auto& buf = buffers_[static_cast<std::size_t>(dst)];
    buf.push_back(item);
    ++items_added_;
    if (buf.size() >= capacity_) flush(dst);
  }

  /// Send `dst`'s pending items (if any) as one envelope.
  void flush(Rank dst) {
    auto& buf = buffers_[static_cast<std::size_t>(dst)];
    if (buf.empty()) return;
    comm_.send_items<T>(dst, tag_, buf);
    ++flushes_;
    buf.clear();
  }

  /// Flush every destination.
  void flush_all() {
    for (Rank d = 0; d < comm_.size(); ++d) flush(d);
  }

  /// True when no destination has pending items.
  [[nodiscard]] bool empty() const {
    for (const auto& buf : buffers_) {
      if (!buf.empty()) return false;
    }
    return true;
  }

  [[nodiscard]] Count items_added() const { return items_added_; }
  [[nodiscard]] Count flushes() const { return flushes_; }

 private:
  Comm& comm_;
  int tag_;
  std::size_t capacity_;
  std::vector<std::vector<T>> buffers_;
  Count items_added_ = 0;
  Count flushes_ = 0;
};

}  // namespace pagen::mps
