#include "mps/engine.h"

#include <exception>
#include <thread>
#include <utility>

#include "mps/delivery_hook.h"
#include "obs/session.h"
#include "util/error.h"
#include "util/timer.h"

namespace pagen::mps {

World::World(int nranks, WorldOptions options)
    : nranks_(nranks),
      options_(std::move(options)),
      collectives_(nranks),
      invariants_(nranks),
      epochs_(static_cast<std::size_t>(nranks), 0) {
  PAGEN_CHECK_MSG(nranks >= 1, "world needs at least one rank");
  PAGEN_CHECK(options_.rto_base_ms > 0 &&
              options_.rto_max_ms >= options_.rto_base_ms);
  if (options_.delivery_hook != nullptr) {
    // A hooked world is plain best-effort transport under a virtual
    // scheduler: the hook owns every delivery, so the reliable channel's
    // timers and the fault injector's decisions have nothing to attach to.
    PAGEN_CHECK_MSG(!options_.reliable && !options_.fault_plan.active(),
                    "delivery_hook is incompatible with reliable transport "
                    "and fault plans");
  }
  if (options_.fault_plan.active()) {
    // Injected faults without the repair layer would just be corruption.
    options_.reliable = true;
    injector_ = std::make_unique<FaultInjector>(options_.fault_plan, nranks);
  }
  invariants_.set_fault_mode(options_.fault_plan.has_crash());
  mailboxes_.reserve(static_cast<std::size_t>(nranks));
  for (int i = 0; i < nranks; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
}

Mailbox& World::mailbox(Rank r) {
  PAGEN_CHECK(r >= 0 && r < nranks_);
  return *mailboxes_[static_cast<std::size_t>(r)];
}

std::uint32_t World::epoch(Rank r) const {
  return epochs_[static_cast<std::size_t>(r)];
}

void World::bump_epoch(Rank r) { ++epochs_[static_cast<std::size_t>(r)]; }

void World::precheck_send(Rank src) {
  if (aborted()) throw WorldAborted();
  if (injector_ != nullptr) injector_->on_send_step(src);
}

void World::deliver(Rank dst, Envelope env, std::uint32_t attempt,
                    CommStats& sender_stats) {
  PAGEN_CHECK(dst >= 0 && dst < nranks_);
  if (injector_ == nullptr || env.tag < 0) {
    mailbox(dst).push(std::move(env));
    return;
  }
  const Rank src = env.src;
  const int tag = env.tag;
  const FaultAction action =
      injector_->decide(src, dst, tag, env.seq, attempt, env.epoch);
  switch (action) {
    case FaultAction::kDrop:
      injector_->count_drop();
      sender_stats.injected_drops += 1;
      // The envelope was counted in flight on send; it just evaporated.
      invariants_.on_filtered(src);
      break;
    case FaultAction::kDup:
      injector_->count_dup();
      sender_stats.injected_dups += 1;
      invariants_.on_phantom_send(src);
      mailbox(dst).push(env);
      mailbox(dst).push(std::move(env));
      break;
    case FaultAction::kHold:
      // Park the envelope; whatever the flow transmits next overtakes it.
      injector_->count_hold();
      for (Envelope& prev : injector_->swap_held(src, dst, tag,
                                                 std::move(env))) {
        mailbox(dst).push(std::move(prev));
      }
      return;
    case FaultAction::kDeliver:
      mailbox(dst).push(std::move(env));
      break;
  }
  // Any non-hold transmission (even a drop) on the flow releases a
  // previously parked envelope *behind* the current one — the reorder.
  for (Envelope& prev : injector_->take_held(src, dst, tag)) {
    mailbox(dst).push(std::move(prev));
  }
}

void World::deliver_control(Rank dst, Envelope env) {
  PAGEN_CHECK(dst >= 0 && dst < nranks_);
  if (options_.delivery_hook != nullptr) {
    // Abort wake-ups must reach ranks parked inside the hook's scheduler,
    // not a mailbox nobody is draining.
    options_.delivery_hook->park_control(dst, std::move(env));
    return;
  }
  mailbox(dst).push(std::move(env));
}

RunResult run_ranks(int nranks, WorldOptions options,
                    const std::function<void(Comm&)>& body,
                    obs::Session* obs) {
  World world(nranks, std::move(options));
  RunResult result;
  result.rank_stats.resize(static_cast<std::size_t>(nranks));
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nranks));
  std::vector<int> respawns(static_cast<std::size_t>(nranks), 0);

  Timer timer;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&, r] {
      obs::RankObserver* ob = obs != nullptr ? &obs->rank(r) : nullptr;
      DeliveryHook* hook = world.hook();
      // Under a hook the rank parks here until the virtual scheduler grants
      // it the first step — from this point on, the OS scheduler no longer
      // decides anything observable.
      if (hook != nullptr) hook->on_rank_start(r);
      bool done = false;
      while (!done) {
        // One incarnation per iteration: a fresh Comm (fresh reliability
        // state under the rank's current epoch) running the same body.
        Comm comm(world, r, ob);
        try {
          const auto sp = obs::span(ob, "rank");
          body(comm);
          done = true;
        } catch (const InjectedCrash&) {
          if (respawns[static_cast<std::size_t>(r)] <
              world.options().max_respawns) {
            respawns[static_cast<std::size_t>(r)] += 1;
            if (ob != nullptr) ob->trace().instant("respawn");
            world.invariants().on_rank_restart(r);
            world.bump_epoch(r);
            continue;  // respawn: the dead incarnation's stats are dropped
          }
          errors[static_cast<std::size_t>(r)] = std::current_exception();
          done = true;
        } catch (...) {
          errors[static_cast<std::size_t>(r)] = std::current_exception();
          done = true;
        }
        if (errors[static_cast<std::size_t>(r)]) {
          // Unblock peers so the world tears down instead of deadlocking on
          // the failed rank: fast-fail future sends, wake collectives via
          // poisoning, and wake mailbox waiters via abort envelopes (poll
          // translates them into WorldAborted).
          world.mark_aborted();
          world.collectives().poison();
          for (int peer = 0; peer < nranks; ++peer) {
            if (peer != r) {
              world.deliver_control(peer, Envelope{r, kAbortTag, {}, 0, 0, 0, {}});
            }
          }
        }
        result.rank_stats[static_cast<std::size_t>(r)] = comm.stats();
        if (ob != nullptr) record_metrics(ob->metrics(), comm.stats());
      }
      // Mark the exit only after any abort envelopes are pushed, so the
      // deadlock probe never sees "rank r can't send" while peers still
      // lack their wake-up envelope.
      world.invariants().note_rank_exit(r);
      if (hook != nullptr) hook->on_rank_exit(r);
    });
  }
  for (auto& t : threads) t.join();
  result.wall_seconds = timer.seconds();
  for (const int n : respawns) result.respawns += static_cast<Count>(n);

  // Prefer the root-cause exception over secondary WorldAborted failures
  // that other ranks raised while tearing down.
  std::exception_ptr first;
  for (const auto& err : errors) {
    if (!err) continue;
    if (!first) first = err;
    try {
      std::rethrow_exception(err);
    } catch (const WorldAborted&) {
      // secondary
    } catch (...) {
      first = err;
      break;
    }
  }
  if (first) std::rethrow_exception(first);
  // Exception-free world: audit the sent-vs-received ledger. A message that
  // was pushed but never drained means some rank stopped polling too early
  // (debug builds only; the Release stub inlines to nothing. Skipped for
  // crash plans, whose replays unbalance the ledger by design).
  world.invariants().verify_termination();
  return result;
}

RunResult run_ranks(int nranks, const std::function<void(Comm&)>& body,
                    obs::Session* obs) {
  return run_ranks(nranks, WorldOptions{}, body, obs);
}

}  // namespace pagen::mps
