#include "mps/engine.h"

#include <exception>
#include <thread>

#include "obs/session.h"
#include "util/error.h"
#include "util/timer.h"

namespace pagen::mps {

World::World(int nranks)
    : nranks_(nranks), collectives_(nranks), invariants_(nranks) {
  PAGEN_CHECK_MSG(nranks >= 1, "world needs at least one rank");
  mailboxes_.reserve(static_cast<std::size_t>(nranks));
  for (int i = 0; i < nranks; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
}

Mailbox& World::mailbox(Rank r) {
  PAGEN_CHECK(r >= 0 && r < nranks_);
  return *mailboxes_[static_cast<std::size_t>(r)];
}

RunResult run_ranks(int nranks, const std::function<void(Comm&)>& body,
                    obs::Session* obs) {
  World world(nranks);
  RunResult result;
  result.rank_stats.resize(static_cast<std::size_t>(nranks));
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nranks));

  Timer timer;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&, r] {
      obs::RankObserver* ob = obs != nullptr ? &obs->rank(r) : nullptr;
      Comm comm(world, r, ob);
      try {
        const auto sp = obs::span(ob, "rank");
        body(comm);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        // Unblock peers so the world tears down instead of deadlocking on
        // the failed rank: wake collectives via poisoning and mailbox
        // waiters via abort envelopes (poll translates them into
        // WorldAborted).
        world.collectives().poison();
        for (int peer = 0; peer < nranks; ++peer) {
          if (peer != r) world.mailbox(peer).push(Envelope{r, kAbortTag, {}});
        }
      }
      // Mark the exit only after any abort envelopes are pushed, so the
      // deadlock probe never sees "rank r can't send" while peers still
      // lack their wake-up envelope.
      world.invariants().note_rank_exit(r);
      result.rank_stats[static_cast<std::size_t>(r)] = comm.stats();
      if (ob != nullptr) record_metrics(ob->metrics(), comm.stats());
    });
  }
  for (auto& t : threads) t.join();
  result.wall_seconds = timer.seconds();

  // Prefer the root-cause exception over secondary WorldAborted failures
  // that other ranks raised while tearing down.
  std::exception_ptr first;
  for (const auto& err : errors) {
    if (!err) continue;
    if (!first) first = err;
    try {
      std::rethrow_exception(err);
    } catch (const WorldAborted&) {
      // secondary
    } catch (...) {
      first = err;
      break;
    }
  }
  if (first) std::rethrow_exception(first);
  // Exception-free world: audit the sent-vs-received ledger. A message that
  // was pushed but never drained means some rank stopped polling too early
  // (debug builds only; the Release stub inlines to nothing).
  world.invariants().verify_termination();
  return result;
}

}  // namespace pagen::mps
