#include "mps/invariant.h"

#ifdef PAGEN_CHECK_INVARIANTS

#include <cstdlib>
#include <sstream>
#include <thread>

#include "util/timer.h"

namespace pagen::mps {
namespace {

/// Default minimum time every rank must have been blocked (with zero
/// envelopes in flight) before the world is declared deadlocked.
/// Overridable via PAGEN_STALL_THRESHOLD_MS — raise it for protocols that
/// legitimately idle longer between retries, lower it in deadlock tests.
constexpr std::int64_t kDefaultStallThresholdNs = 500'000'000;  // 500 ms

std::int64_t stall_threshold_from_env() {
  // Read once per World, on the constructing thread, before any rank thread
  // exists — safe despite getenv's process-global state.
  const char* ms = std::getenv("PAGEN_STALL_THRESHOLD_MS");
  if (ms == nullptr) return kDefaultStallThresholdNs;
  const long parsed = std::strtol(ms, nullptr, 10);
  if (parsed <= 0) return kDefaultStallThresholdNs;
  return static_cast<std::int64_t>(parsed) * 1'000'000;
}

}  // namespace

InvariantChecker::InvariantChecker(int nranks)
    : nranks_(nranks),
      ranks_(static_cast<std::size_t>(nranks)),
      stall_threshold_ns_(stall_threshold_from_env()) {}

std::uint64_t InvariantChecker::on_send(Rank src, Rank dst, int tag) {
  RankState& me = ranks_[static_cast<std::size_t>(src)];
  // Count the envelope as in flight *before* it becomes visible in the
  // destination mailbox, so the stall probe can never observe a world where
  // a message exists but in_flight_ reads zero.
  in_flight_.fetch_add(1);
  activity_.fetch_add(1);
  me.stalled_since_ns.store(-1);
  me.fruitless_waits.store(0);
  return me.next_send_seq[{dst, tag}]++;
}

void InvariantChecker::on_phantom_send(Rank src) {
  RankState& me = ranks_[static_cast<std::size_t>(src)];
  in_flight_.fetch_add(1);
  activity_.fetch_add(1);
  me.stalled_since_ns.store(-1);
  me.fruitless_waits.store(0);
}

void InvariantChecker::on_filtered(Rank r) {
  RankState& me = ranks_[static_cast<std::size_t>(r)];
  in_flight_.fetch_sub(1);
  activity_.fetch_add(1);
  me.stalled_since_ns.store(-1);
  me.fruitless_waits.store(0);
}

void InvariantChecker::on_receive(Rank dst, const Envelope& env) {
  if (env.tag == kAbortTag || env.tag == kAckTag) {
    return;  // engine-internal, bypasses accounting
  }
  RankState& me = ranks_[static_cast<std::size_t>(dst)];
  const auto [it, inserted] = me.next_recv_seq.try_emplace({env.src, env.tag});
  RecvSeq& rs = it->second;
  if (inserted) {
    // A restarted receiver lost its receive history with the crash: adopt
    // whatever sequence point the reliability layer hands it first.
    rs = RecvSeq{env.epoch, me.restarted ? env.seq : 0};
  } else if (env.epoch != rs.epoch) {
    // The sender respawned; its flows restart. Order is asserted within an
    // incarnation, never across them.
    rs = RecvSeq{env.epoch, env.seq};
  }
  if (env.seq != rs.expected) {
    std::ostringstream os;
    os << "non-overtaking delivery violated: rank " << dst
       << " received seq " << env.seq << " from rank " << env.src << " tag "
       << env.tag << ", expected seq " << rs.expected;
    throw InvariantViolation(os.str());
  }
  ++rs.expected;
  in_flight_.fetch_sub(1);
  activity_.fetch_add(1);
  me.stalled_since_ns.store(-1);
  me.fruitless_waits.store(0);
}

void InvariantChecker::on_rank_restart(Rank r) {
  RankState& me = ranks_[static_cast<std::size_t>(r)];
  me.next_send_seq.clear();
  me.next_recv_seq.clear();
  me.restarted = true;
}

void InvariantChecker::set_fault_mode(bool skip_termination_audit) {
  skip_termination_audit_ = skip_termination_audit;
}

void InvariantChecker::enter_wait(Rank r, const char* what) {
  RankState& me = ranks_[static_cast<std::size_t>(r)];
  me.wait_kind.store(what);
  // Start (or continue) the stall clock: it only resets on real progress —
  // an envelope sent or received, or a completed collective — so fruitless
  // 20 ms poll iterations accumulate into one long observable stall.
  std::int64_t expected = -1;
  me.stalled_since_ns.compare_exchange_strong(expected, now_ns());
}

void InvariantChecker::leave_wait(Rank r, bool made_progress) {
  RankState& me = ranks_[static_cast<std::size_t>(r)];
  if (made_progress) {
    me.wait_kind.store(nullptr);
    me.stalled_since_ns.store(-1);
    me.fruitless_waits.store(0);
  }
  // After a fruitless wait, wait_kind stays set: the rank is about to
  // re-enter the same wait, and the deadlock dump should name the site it
  // is parked at, not the instant between two retries.
}

bool InvariantChecker::all_ranks_stalled(std::int64_t now) const {
  for (const RankState& rs : ranks_) {
    if (rs.exited.load()) continue;  // can never send again
    const std::int64_t since = rs.stalled_since_ns.load();
    if (since < 0 || now - since < stall_threshold_ns_) return false;
  }
  return true;
}

std::string InvariantChecker::dump_wait_states(std::int64_t now) const {
  std::ostringstream os;
  for (int r = 0; r < nranks_; ++r) {
    const RankState& rs = ranks_[static_cast<std::size_t>(r)];
    os << "\n  rank " << r << ": ";
    if (rs.exited.load()) {
      os << "exited";
      continue;
    }
    const char* kind = rs.wait_kind.load();
    const std::int64_t since = rs.stalled_since_ns.load();
    os << (kind != nullptr ? kind : "between waits");
    if (since >= 0) {
      os << ", stalled for " << (now - since) / 1'000'000 << " ms";
    }
  }
  return os.str();
}

void InvariantChecker::on_wait_timeout(Rank r) {
  RankState& me = ranks_[static_cast<std::size_t>(r)];
  // A single empty wait is routine (e.g. a test probing that nothing
  // arrives); only a streak of them makes this rank a deadlock candidate.
  if (me.fruitless_waits.fetch_add(1) + 1 < 2) return;
  if (in_flight_.load() != 0) return;
  if (!all_ranks_stalled(now_ns())) return;

  // Candidate deadlock. Confirm with a second look after a delay: if any
  // rank sends, receives, or finishes a collective in between, the activity
  // counter moves and we stand down. This closes the race where a rank was
  // *about to* act when the first screen passed.
  const std::uint64_t before = activity_.load();
  std::this_thread::sleep_for(
      std::chrono::nanoseconds(stall_threshold_ns_ / 4));
  const std::int64_t now = now_ns();
  if (activity_.load() != before || in_flight_.load() != 0 ||
      !all_ranks_stalled(now)) {
    return;
  }
  std::ostringstream os;
  os << "mps deadlock: every rank is blocked with 0 envelopes in flight "
     << "(stall threshold " << stall_threshold_ns_ / 1'000'000
     << " ms; is the flush-after-receive rule disabled?). Wait states:"
     << dump_wait_states(now);
  throw DeadlockError(os.str());
}

void InvariantChecker::note_rank_exit(Rank r) {
  ranks_[static_cast<std::size_t>(r)].exited.store(true);
}

void InvariantChecker::verify_termination() const {
  // Crash plans unbalance the ledger by design (see set_fault_mode).
  if (skip_termination_audit_) return;
  // Post-join, single-threaded: thread::join established happens-before for
  // every rank's sequence table, so plain reads are safe here.
  std::ostringstream os;
  bool lost = false;
  for (int src = 0; src < nranks_; ++src) {
    const RankState& s = ranks_[static_cast<std::size_t>(src)];
    for (const auto& [flow, sent] : s.next_send_seq) {
      const auto& [dst, tag] = flow;
      const RankState& d = ranks_[static_cast<std::size_t>(dst)];
      const auto it = d.next_recv_seq.find({src, tag});
      const std::uint64_t received =
          it != d.next_recv_seq.end() ? it->second.expected : 0;
      if (received != sent) {
        if (!lost) os << "lost messages at termination:";
        lost = true;
        os << "\n  " << src << " -> " << dst << " tag " << tag << ": sent "
           << sent << ", received " << received;
      }
    }
  }
  if (lost) throw InvariantViolation(os.str());
}

}  // namespace pagen::mps

#endif  // PAGEN_CHECK_INVARIANTS
