#include "mps/comm.h"

#include "mps/engine.h"
#include "util/error.h"

namespace pagen::mps {
namespace {

std::vector<std::byte> encode_u64(std::uint64_t v) {
  std::vector<std::byte> b;
  pack_one(b, v);
  return b;
}

std::uint64_t decode_u64(const std::vector<std::byte>& b) {
  const auto items = unpack<std::uint64_t>(b);
  PAGEN_CHECK(items.size() == 1);
  return items[0];
}

std::vector<std::byte> encode_double(double v) {
  std::vector<std::byte> b;
  pack_one(b, v);
  return b;
}

double decode_double(const std::vector<std::byte>& b) {
  const auto items = unpack<double>(b);
  PAGEN_CHECK(items.size() == 1);
  return items[0];
}

}  // namespace

Comm::Comm(World& world, Rank rank) : world_(world), rank_(rank) {
  PAGEN_CHECK(rank >= 0 && rank < world.size());
}

int Comm::size() const { return world_.size(); }

void Comm::send_bytes(Rank dst, int tag, std::vector<std::byte> payload) {
  PAGEN_CHECK_MSG(dst >= 0 && dst < size(), "send to invalid rank " << dst);
  stats_.envelopes_sent += 1;
  stats_.bytes_sent += payload.size();
  world_.mailbox(dst).push(Envelope{rank_, tag, std::move(payload)});
}

bool Comm::poll(std::vector<Envelope>& out) {
  const std::size_t before = out.size();
  const bool got = world_.mailbox(rank_).try_drain(out);
  account_received(out, before);
  return got;
}

bool Comm::poll_wait(std::vector<Envelope>& out,
                     std::chrono::milliseconds timeout) {
  const std::size_t before = out.size();
  const bool got = world_.mailbox(rank_).wait_drain(out, timeout);
  account_received(out, before);
  return got;
}

void Comm::account_received(std::vector<Envelope>& out, std::size_t before) {
  for (std::size_t i = before; i < out.size(); ++i) {
    if (out[i].tag == kAbortTag) throw WorldAborted();
    stats_.envelopes_received += 1;
    stats_.bytes_received += out[i].payload.size();
  }
}

void Comm::barrier() {
  stats_.collectives += 1;
  (void)world_.collectives().exchange(rank_, {});
}

std::uint64_t Comm::allreduce_sum(std::uint64_t v) {
  stats_.collectives += 1;
  const auto all = world_.collectives().exchange(rank_, encode_u64(v));
  std::uint64_t sum = 0;
  for (const auto& blob : all) sum += decode_u64(blob);
  return sum;
}

std::uint64_t Comm::allreduce_max(std::uint64_t v) {
  stats_.collectives += 1;
  const auto all = world_.collectives().exchange(rank_, encode_u64(v));
  std::uint64_t best = 0;
  for (const auto& blob : all) best = std::max(best, decode_u64(blob));
  return best;
}

double Comm::allreduce_sum_double(double v) {
  stats_.collectives += 1;
  const auto all = world_.collectives().exchange(rank_, encode_double(v));
  double sum = 0;
  for (const auto& blob : all) sum += decode_double(blob);
  return sum;
}

std::vector<std::uint64_t> Comm::allgather(std::uint64_t v) {
  stats_.collectives += 1;
  const auto all = world_.collectives().exchange(rank_, encode_u64(v));
  std::vector<std::uint64_t> out;
  out.reserve(all.size());
  for (const auto& blob : all) out.push_back(decode_u64(blob));
  return out;
}

std::vector<std::vector<std::byte>> Comm::allgather_bytes(
    std::vector<std::byte> blob) {
  stats_.collectives += 1;
  return world_.collectives().exchange(rank_, std::move(blob));
}

std::uint64_t Comm::broadcast(std::uint64_t v, Rank root) {
  PAGEN_CHECK(root >= 0 && root < size());
  stats_.collectives += 1;
  const auto all = world_.collectives().exchange(rank_, encode_u64(v));
  return decode_u64(all[static_cast<std::size_t>(root)]);
}

}  // namespace pagen::mps
