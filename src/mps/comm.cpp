#include "mps/comm.h"

#include <algorithm>

#include "mps/delivery_hook.h"
#include "mps/engine.h"
#include "obs/session.h"
#include "util/error.h"
#include "util/timer.h"

namespace pagen::mps {
namespace {

/// Blocking waits shorter than this are not worth a trace event; longer
/// ones are exactly the stalls Section 3.5's load analysis is after.
constexpr std::int64_t kWaitSpanThresholdNs = 1'000'000;  // 1 ms

/// Reliable-mode blocking waits are chopped into chunks this long so the
/// retransmission timers (WorldOptions::rto_base_ms and up) are serviced
/// while the rank is otherwise blocked on an empty mailbox.
constexpr std::int64_t kReliableWaitChunkMs = 5;

std::vector<std::byte> encode_u64(std::uint64_t v) {
  std::vector<std::byte> b;
  pack_one(b, v);
  return b;
}

std::uint64_t decode_u64(const std::vector<std::byte>& b) {
  const auto items = unpack<std::uint64_t>(b);
  PAGEN_CHECK(items.size() == 1);
  return items[0];
}

std::vector<std::byte> encode_double(double v) {
  std::vector<std::byte> b;
  pack_one(b, v);
  return b;
}

double decode_double(const std::vector<std::byte>& b) {
  const auto items = unpack<double>(b);
  PAGEN_CHECK(items.size() == 1);
  return items[0];
}

}  // namespace

Comm::Comm(World& world, Rank rank, obs::RankObserver* ob)
    : world_(world), rank_(rank), obs_(ob) {
  PAGEN_CHECK(rank >= 0 && rank < world.size());
  stats_.envelopes_to.assign(static_cast<std::size_t>(world.size()), 0);
  if (world.reliable()) {
    reliable_ = std::make_unique<ReliableChannel>(world, rank,
                                                  world.epoch(rank), stats_);
  }
}

int Comm::size() const { return world_.size(); }

std::uint32_t Comm::incarnation() const { return world_.epoch(rank_); }

void Comm::send_bytes(Rank dst, int tag, std::vector<std::byte> payload) {
  send_bytes(dst, tag, std::move(payload), {});
}

void Comm::send_bytes(Rank dst, int tag, std::vector<std::byte> payload,
                      std::vector<CausalStamp> stamps) {
  PAGEN_CHECK_MSG(dst >= 0 && dst < size(), "send to invalid rank " << dst);
  // Abort fast-fail and the fault script run before any accounting, so a
  // send that crashes (InjectedCrash) or fast-fails was never counted.
  world_.precheck_send(rank_);
  stats_.envelopes_sent += 1;
  stats_.bytes_sent += payload.size();
  stats_.envelopes_to[static_cast<std::size_t>(dst)] += 1;
  stats_.sent_by_tag[tag] += 1;
  stats_.causal_stamps += stamps.size();
  if (obs_ != nullptr && obs_->trace().sample_tick()) {
    obs_->trace().instant("send");
  }
  if (reliable_ != nullptr) {
    // The channel stamps seq + epoch (in lockstep with the checker's
    // ledger entry) and owns retransmission until the flow is acked.
    (void)world_.invariants().on_send(rank_, dst, tag);
    reliable_->send(dst, tag, std::move(payload), std::move(stamps));
    return;
  }
  const std::uint64_t seq = world_.invariants().on_send(rank_, dst, tag);
  Envelope env{rank_, tag, std::move(payload), seq, 0, 0, std::move(stamps)};
  if (world_.hook() != nullptr) {
    // Schedule-controlled world: the hook owns the envelope until its
    // scheduler releases it through a poll on dst.
    world_.hook()->park(dst, std::move(env));
    return;
  }
  world_.mailbox(dst).push(std::move(env));
}

bool Comm::poll(std::vector<Envelope>& out) {
  const std::size_t before = out.size();
  if (world_.hook() != nullptr) {
    // Scheduling point: the hook decides whether this poll observes a
    // pending envelope or comes back empty-handed. The invariant wait
    // brackets stay out of the way — stall probing is the virtual
    // scheduler's job here — but receipt accounting is unchanged, so the
    // ledger audit still runs per explored schedule in debug builds.
    (void)world_.hook()->on_poll(rank_, /*blocking=*/false, out);
    account_received(out, before);
    return out.size() > before;
  }
  if (reliable_ == nullptr) {
    const bool got = world_.mailbox(rank_).try_drain(out);
    account_received(out, before);
    return got;
  }
  take_stash(out);
  scratch_.clear();
  world_.mailbox(rank_).try_drain(scratch_);
  reliable_->ingest(scratch_, out);
  reliable_->maybe_retransmit();
  account_received(out, before);
  return out.size() > before;
}

bool Comm::poll_wait(std::vector<Envelope>& out,
                     std::chrono::milliseconds timeout) {
  const std::size_t before = out.size();
  if (world_.hook() != nullptr) {
    // Blocking scheduling point: parks until the hook's scheduler releases
    // an envelope (or an abort) to this rank — `timeout` is virtual time
    // the hook does not model, so it is ignored by contract.
    (void)world_.hook()->on_poll(rank_, /*blocking=*/true, out);
    account_received(out, before);
    return out.size() > before;
  }
  if (reliable_ == nullptr && obs_ == nullptr) {
    const bool got = wait_drain_checked(out, timeout);
    account_received(out, before);
    return got;
  }
  // Instrumented path: surface waits long enough to matter as retroactive
  // "idle_wait" spans — the time a rank spends blocked on an unresolved
  // dependency chain or on peers that have nothing for it yet.
  const std::int64_t start = now_ns();
  if (reliable_ != nullptr && take_stash(out)) {
    account_received(out, before);
    return true;
  }
  const bool got = reliable_ != nullptr
                       ? wait_filtered(out, before, timeout)
                       : wait_drain_checked(out, timeout);
  if (obs_ != nullptr) {
    const std::int64_t dur = now_ns() - start;
    if (dur >= kWaitSpanThresholdNs) {
      obs_->trace().span_at("idle_wait", start, dur);
    }
  }
  account_received(out, before);
  return got;
}

bool Comm::wait_filtered(std::vector<Envelope>& out, std::size_t before,
                         std::chrono::milliseconds timeout) {
  InvariantChecker& inv = world_.invariants();
  const std::int64_t deadline = now_ns() + timeout.count() * 1'000'000;
  for (;;) {
    const std::int64_t remaining_ns = deadline - now_ns();
    const std::chrono::milliseconds chunk(std::clamp<std::int64_t>(
        (remaining_ns + 999'999) / 1'000'000, 0, kReliableWaitChunkMs));
    scratch_.clear();
    inv.enter_wait(rank_, "poll_wait");
    (void)world_.mailbox(rank_).wait_drain(scratch_, chunk);
    reliable_->ingest(scratch_, out);
    const bool progressed = out.size() > before;
    inv.leave_wait(rank_, progressed);
    reliable_->maybe_retransmit();
    if (progressed) return true;
    if (now_ns() >= deadline) {
      // The whole timeout elapsed with nothing deliverable: this is the
      // deadlock probe's trigger point, same as the unreliable path.
      inv.on_wait_timeout(rank_);
      return false;
    }
  }
}

bool Comm::wait_drain_checked(std::vector<Envelope>& out,
                              std::chrono::milliseconds timeout) {
  InvariantChecker& inv = world_.invariants();
  inv.enter_wait(rank_, "poll_wait");
  const bool got = world_.mailbox(rank_).wait_drain(out, timeout);
  inv.leave_wait(rank_, got);
  // A fruitless blocking wait is the deadlock probe's trigger point: this
  // rank is demonstrably idle, so it does the global stall check.
  if (!got) inv.on_wait_timeout(rank_);
  return got;
}

std::size_t Comm::pending() const { return world_.mailbox(rank_).size(); }

void Comm::account_received(std::vector<Envelope>& out, std::size_t before) {
  // Drain-safe abort: account every data envelope of the batch before an
  // abort envelope unwinds, so stats and in-flight bookkeeping stay exact
  // even when the batch mixes real traffic with the engine's wake-up.
  bool aborted = false;
  std::size_t keep = before;
  for (std::size_t i = before; i < out.size(); ++i) {
    if (out[i].tag == kAbortTag) {
      aborted = true;
      continue;
    }
    world_.invariants().on_receive(rank_, out[i]);
    stats_.envelopes_received += 1;
    stats_.bytes_received += out[i].payload.size();
    stats_.received_by_tag[out[i].tag] += 1;
    if (keep != i) out[keep] = std::move(out[i]);
    ++keep;
  }
  out.resize(keep);
  if (aborted) throw WorldAborted();
}

bool Comm::take_stash(std::vector<Envelope>& out) {
  if (stash_.empty()) return false;
  out.insert(out.end(), std::make_move_iterator(stash_.begin()),
             std::make_move_iterator(stash_.end()));
  stash_.clear();
  return true;
}

std::vector<std::vector<std::byte>> Comm::exchange(const char* op,
                                                   std::vector<std::byte> blob) {
  stats_.collectives += 1;
  const auto sp = obs::span(obs_, op);
  DeliveryHook* hook = world_.hook();
  // The rendezvous cedes this rank's scheduling turn: the hook must learn
  // the rank is about to block on peers (enter never blocks — the
  // rendezvous itself does) and, on the way out, park the rank until the
  // scheduler resumes it. The exception path (poisoned world) skips the
  // park so teardown can't re-enter the scheduler.
  if (hook != nullptr) hook->on_collective_enter(rank_);
  InvariantChecker& inv = world_.invariants();
  inv.enter_wait(rank_, "collective");
  try {
    auto result =
        reliable_ != nullptr
            ? world_.collectives().exchange_serviced(
                  rank_, std::move(blob),
                  std::chrono::milliseconds(kReliableWaitChunkMs),
                  [this] {
                    scratch_.clear();
                    world_.mailbox(rank_).try_drain(scratch_);
                    reliable_->ingest(scratch_, stash_);
                    reliable_->maybe_retransmit();
                  })
            : world_.collectives().exchange(rank_, std::move(blob));
    inv.leave_wait(rank_, /*made_progress=*/true);
    if (hook != nullptr) hook->on_collective_exit(rank_, /*park=*/true);
    return result;
  } catch (...) {
    inv.leave_wait(rank_, /*made_progress=*/false);
    if (hook != nullptr) hook->on_collective_exit(rank_, /*park=*/false);
    throw;
  }
}

void Comm::barrier() { (void)exchange("barrier", {}); }

std::uint64_t Comm::allreduce_sum(std::uint64_t v) {
  const auto all = exchange("allreduce_sum", encode_u64(v));
  std::uint64_t sum = 0;
  for (const auto& blob : all) sum += decode_u64(blob);
  return sum;
}

std::uint64_t Comm::allreduce_max(std::uint64_t v) {
  const auto all = exchange("allreduce_max", encode_u64(v));
  std::uint64_t best = 0;
  for (const auto& blob : all) best = std::max(best, decode_u64(blob));
  return best;
}

double Comm::allreduce_sum_double(double v) {
  const auto all = exchange("allreduce_sum", encode_double(v));
  double sum = 0;
  for (const auto& blob : all) sum += decode_double(blob);
  return sum;
}

std::vector<std::uint64_t> Comm::allgather(std::uint64_t v) {
  const auto all = exchange("allgather", encode_u64(v));
  std::vector<std::uint64_t> out;
  out.reserve(all.size());
  for (const auto& blob : all) out.push_back(decode_u64(blob));
  return out;
}

std::vector<std::vector<std::byte>> Comm::allgather_bytes(
    std::vector<std::byte> blob) {
  return exchange("allgather_bytes", std::move(blob));
}

std::uint64_t Comm::broadcast(std::uint64_t v, Rank root) {
  PAGEN_CHECK(root >= 0 && root < size());
  const auto all = exchange("broadcast", encode_u64(v));
  return decode_u64(all[static_cast<std::size_t>(root)]);
}

}  // namespace pagen::mps
