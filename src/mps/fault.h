// Deterministic fault injection for the mps runtime.
//
// The paper's algorithms assume a lossless, crash-free message substrate;
// this module deliberately breaks that assumption in a *reproducible* way so
// the reliability layer (mps/reliable.h) and the generators' checkpoint /
// restart path (core/checkpoint.h) can be exercised under ctest. Every
// injection decision is a pure function of (fault seed, src, dst, tag, seq,
// attempt, epoch) — independent of thread interleaving — so a fault run is
// replayable from its seed alone. See docs/robustness.md for the spec
// grammar and the determinism guarantees.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "mps/message.h"
#include "util/types.h"

namespace pagen::mps {

/// Thrown from the send path of a rank scripted to crash. The engine treats
/// it as a *recoverable* failure: the rank is respawned (up to
/// WorldOptions::max_respawns) instead of aborting the world.
class InjectedCrash : public std::runtime_error {
 public:
  explicit InjectedCrash(Rank rank, std::uint64_t step)
      : std::runtime_error("injected crash of rank " + std::to_string(rank) +
                           " at send step " + std::to_string(step)) {}
};

/// A parsed fault plan. Default-constructed plans are inert. Spec grammar
/// (docs/robustness.md):
///
///   spec  := item (',' item)*
///   item  := 'seed=' u64        — decision seed (default 0)
///          | 'drop=' prob       — per-transmission drop probability
///          | 'dup=' prob        — duplicate-delivery probability
///          | 'reorder=' prob    — hold-and-swap (overtaking) probability
///          | 'crash=' rank '@' step          — kill rank at its step-th send
///          | 'stall=' rank '@' step ':' ms   — freeze rank for ms at a step
///          | 'jobfail=' prob '@' attempts    — svc: fail a job attempt with
///                                              prob, for the first attempts
///                                              attempts of each job
///          | 'storecorrupt=' prob  — svc: flip a byte in a freshly written
///                                    result-store shard
///          | 'ckptcorrupt=' prob   — svc: flip a byte in a checkpoint file
///                                    after a failed attempt
///
/// e.g. "seed=7,drop=0.02,dup=0.01,reorder=0.05,crash=3@1000" or, for the
/// serving layer, "seed=9,jobfail=0.5@2,storecorrupt=0.3,ckptcorrupt=0.2".
/// The svc-scope items are interpreted by svc::Server, not the transport;
/// they do not force reliable delivery on their own (see svc_active()).
struct FaultPlan {
  std::uint64_t seed = 0;
  double drop = 0.0;
  double dup = 0.0;
  double reorder = 0.0;
  Rank crash_rank = -1;
  std::uint64_t crash_step = 0;
  Rank stall_rank = -1;
  std::uint64_t stall_step = 0;
  std::uint32_t stall_ms = 0;
  double jobfail = 0.0;
  std::uint32_t jobfail_attempts = 1;
  double storecorrupt = 0.0;
  double ckptcorrupt = 0.0;

  /// True when any *transport-scope* injection is configured. An active plan
  /// requires the reliable-delivery layer (enforced by World's constructor).
  /// Service-scope faults (jobfail/storecorrupt/ckptcorrupt) deliberately do
  /// not count: they live above the transport.
  [[nodiscard]] bool active() const {
    return drop > 0.0 || dup > 0.0 || reorder > 0.0 || crash_rank >= 0 ||
           stall_rank >= 0;
  }

  /// True when any service-scope injection is configured (svc::Server).
  [[nodiscard]] bool svc_active() const {
    return jobfail > 0.0 || storecorrupt > 0.0 || ckptcorrupt > 0.0;
  }

  [[nodiscard]] bool has_crash() const { return crash_rank >= 0; }

  /// Pure uniform roll in [0, 1) for service-scope decisions: a splitmix64
  /// chain over (seed, salt, key, attempt). `salt` names the fault kind,
  /// `key` the job (spec hash or job id), `attempt` the attempt ordinal —
  /// so a decision is replayable from the plan seed alone, independent of
  /// worker scheduling.
  [[nodiscard]] double svc_roll(std::uint64_t salt, std::uint64_t key,
                                std::uint32_t attempt) const;

  /// Parse the spec grammar above; throws CheckError on malformed input.
  [[nodiscard]] static FaultPlan parse(const std::string& spec);

  /// Canonical spec string (parse(to_string()) round-trips).
  [[nodiscard]] std::string to_string() const;
};

/// What to do with one physical transmission.
enum class FaultAction : std::uint8_t {
  kDeliver,  ///< deliver normally
  kDrop,     ///< discard silently (retransmission recovers it)
  kDup,      ///< deliver twice (receiver-side dedup discards the copy)
  kHold,     ///< park; released after the flow's next transmission (reorder)
};

/// One injector per World. Decision state is pure (no mutation); the limbo
/// buffers used for reordering are keyed by source rank and touched only by
/// that rank's thread, so they need no locks. The crash/stall latches are
/// atomics because the respawned incarnation re-reads them.
class FaultInjector {
 public:
  FaultInjector(FaultPlan plan, int nranks);

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

  /// Pure decision for one physical transmission attempt.
  [[nodiscard]] FaultAction decide(Rank src, Rank dst, int tag,
                                   std::uint64_t seq, std::uint32_t attempt,
                                   std::uint32_t epoch) const;

  /// Send-path precheck, called on src's thread before every logical send:
  /// advances src's step counter, sleeps through a scripted stall, and
  /// throws InjectedCrash exactly once when the scripted step is reached.
  void on_send_step(Rank src);

  /// Reordering limbo of one source rank (owner thread only): at most one
  /// held envelope per (dst, tag) flow. Returns the previously held
  /// envelope for the flow, if any, which the caller must deliver *after*
  /// the current one.
  [[nodiscard]] std::vector<Envelope> swap_held(Rank src, Rank dst, int tag,
                                                Envelope held);
  [[nodiscard]] std::vector<Envelope> take_held(Rank src, Rank dst, int tag);

  // Run-wide injection tallies (informational; per-rank counts live in
  // CommStats so they survive into RunResult).
  [[nodiscard]] std::uint64_t total_drops() const { return drops_.load(); }
  [[nodiscard]] std::uint64_t total_dups() const { return dups_.load(); }
  [[nodiscard]] std::uint64_t total_holds() const { return holds_.load(); }
  [[nodiscard]] bool crash_fired() const { return crash_fired_.load(); }

  void count_drop() { drops_.fetch_add(1, std::memory_order_relaxed); }
  void count_dup() { dups_.fetch_add(1, std::memory_order_relaxed); }
  void count_hold() { holds_.fetch_add(1, std::memory_order_relaxed); }

 private:
  using FlowKey = std::pair<Rank, int>;

  FaultPlan plan_;
  /// Cumulative logical-send steps per rank; indexed and written only by
  /// the owning rank's thread (survives respawn, which reuses the thread).
  std::vector<std::uint64_t> steps_;
  /// Per-source reorder limbo, owner-thread only (see class comment).
  std::vector<std::map<FlowKey, Envelope>> limbo_;
  std::atomic<std::uint64_t> drops_{0};
  std::atomic<std::uint64_t> dups_{0};
  std::atomic<std::uint64_t> holds_{0};
  std::atomic<bool> crash_fired_{false};
  std::atomic<bool> stall_fired_{false};
};

}  // namespace pagen::mps
