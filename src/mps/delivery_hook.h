// DeliveryHook: the schedule-control seam of the mps transport.
//
// A World constructed with WorldOptions::delivery_hook hands *every*
// delivery decision to the hook instead of the mailboxes: data envelopes are
// parked with the hook at send time, and the poll paths ask the hook which
// parked envelope (if any) is delivered next. Paired with the rank-lifecycle
// and collective notifications below, an implementation owns the complete
// message schedule of the world — which is exactly what the model checker
// (mps/modelcheck.h) needs to enumerate or replay interleavings that the OS
// scheduler would only ever produce by accident.
//
// The seam mirrors how FaultInjector already intercepts envelopes inside
// World::deliver, but one layer earlier: a hooked world never touches a
// Mailbox at all, so per-flow delivery order is whatever the hook decides
// (subject to the hook preserving per-(src, dst, tag) FIFO — the
// non-overtaking contract the protocol relies on, docs/protocol.md §5).
//
// A hooked world must be plain best-effort transport: no reliable channel,
// no fault plan (World's constructor enforces this). Contract for callers of
// Comm under a hook: `poll_wait` blocks until the hook releases an envelope
// — its timeout is ignored — and `poll` returns at most one scheduling
// decision's worth of envelopes.
#pragma once

#include <vector>

#include "mps/message.h"
#include "util/types.h"

namespace pagen::mps {

class DeliveryHook {
 public:
  DeliveryHook() = default;
  DeliveryHook(const DeliveryHook&) = delete;
  DeliveryHook& operator=(const DeliveryHook&) = delete;
  virtual ~DeliveryHook() = default;

  /// Rank r's thread is about to run the rank body. May block until the
  /// hook's scheduler lets the rank proceed.
  virtual void on_rank_start(Rank r) = 0;

  /// Rank r's body returned or threw; the thread is about to exit. Called
  /// after the engine's own exit bookkeeping, never blocks.
  virtual void on_rank_exit(Rank r) = 0;

  /// A data envelope addressed to `dst` leaves the sender (sender's
  /// thread). The hook owns it until it releases it through on_poll — or
  /// never does (an undelivered envelope at termination is a lost message).
  virtual void park(Rank dst, Envelope env) = 0;

  /// A control envelope (engine abort broadcast) addressed to `dst`. The
  /// hook must ensure a rank blocked in on_poll observes it promptly.
  virtual void park_control(Rank dst, Envelope env) = 0;

  /// Scheduling point: rank r polls its (virtual) mailbox. Blocks until the
  /// hook's scheduler resumes the rank, appends any released envelopes to
  /// `out`, and returns true when something was appended. With
  /// `blocking` = false the scheduler may resume the rank empty-handed
  /// (returns false); with `blocking` = true the rank stays parked until an
  /// envelope (or an abort) is released to it.
  virtual bool on_poll(Rank r, bool blocking, std::vector<Envelope>& out) = 0;

  /// Rank r is about to block in a collective rendezvous. Never blocks (the
  /// rendezvous itself does).
  virtual void on_collective_enter(Rank r) = 0;

  /// Rank r returned from a collective rendezvous. With `park` = true
  /// (normal completion) the call may block until the scheduler resumes the
  /// rank; with `park` = false (the rendezvous threw — world poisoned) it
  /// only fixes bookkeeping and returns immediately.
  virtual void on_collective_exit(Rank r, bool park) = 0;
};

}  // namespace pagen::mps
