#include "mps/reliable.h"

#include <algorithm>

#include "mps/engine.h"
#include "util/error.h"
#include "util/timer.h"

namespace pagen::mps {

ReliableChannel::ReliableChannel(World& world, Rank rank, std::uint32_t epoch,
                                 CommStats& stats)
    : world_(world),
      rank_(rank),
      epoch_(epoch),
      rto_base_ns_(world.options().rto_base_ms * 1'000'000),
      rto_max_ns_(world.options().rto_max_ms * 1'000'000),
      stats_(stats),
      peers_(static_cast<std::size_t>(world.size())) {
  PAGEN_CHECK(rto_base_ns_ > 0 && rto_max_ns_ >= rto_base_ns_);
}

void ReliableChannel::send(Rank dst, int tag, std::vector<std::byte> payload,
                           std::vector<CausalStamp> stamps) {
  PAGEN_CHECK_MSG(tag >= 0, "reliable flows use non-negative tags only");
  const std::uint64_t seq = next_seq_[{dst, tag}]++;
  Envelope env{rank_, tag,    std::move(payload),
               seq,   epoch_, peers_[static_cast<std::size_t>(dst)].epoch,
               std::move(stamps)};
  retained_[{dst, tag}].push_back(
      Retained{seq, env.payload, env.causal, 0, now_ns() + rto_base_ns_});
  world_.deliver(dst, std::move(env), /*attempt=*/0, stats_);
}

void ReliableChannel::ingest(std::vector<Envelope>& raw,
                             std::vector<Envelope>& out) {
  for (Envelope& env : raw) {
    if (env.tag == kAckTag) {
      consume_ack(env);
      continue;
    }
    if (env.tag < 0) {
      // Engine control traffic (abort): not part of any reliable flow.
      out.push_back(std::move(env));
      continue;
    }
    if (env.dest_epoch != epoch_) {
      // Addressed to a dead incarnation of this rank (we respawned since the
      // sender stamped it). Under reordering no arrival-order heuristic can
      // resynchronize the flow, so pre-crash traffic is dropped wholesale;
      // the sender restarts the flow at 0 once it learns our new epoch.
      stats_.duplicates_dropped += 1;
      world_.invariants().on_filtered(rank_);
      continue;
    }
    Peer& peer = peers_[static_cast<std::size_t>(env.src)];
    if (env.epoch < peer.epoch) {
      // A dead incarnation's envelope surfacing late: never deliver.
      stats_.duplicates_dropped += 1;
      world_.invariants().on_filtered(rank_);
      continue;
    }
    if (env.epoch > peer.epoch) {
      // The peer respawned (or this is first contact and it had already
      // respawned before we ever heard from it — the reset below must not
      // depend on having seen the dead incarnation: our send flows may have
      // advanced against it regardless, and the new incarnation expects
      // them from 0). Its flows to us restart at sequence 0, and our flows
      // to it restart too: its receive history died with it, so every
      // unacked envelope we retained is abandoned here — the protocol-level
      // recovery (checkpoint replay + kTagRecover re-offer) regenerates the
      // content under the new sequence regime.
      peer.epoch = env.epoch;
      peer.flows.clear();
      for (auto it = retained_.begin(); it != retained_.end();) {
        it = it->first.first == env.src ? retained_.erase(it) : std::next(it);
      }
      for (auto it = next_seq_.begin(); it != next_seq_.end();) {
        it = it->first.first == env.src ? next_seq_.erase(it) : std::next(it);
      }
    }
    RecvFlow& flow = peer.flows[env.tag];
    if (env.seq < flow.next) {
      // Duplicate (injected, or a retransmission that crossed our ack).
      // Re-mark dirty so a fresh ack stops the sender's retransmit timer.
      stats_.duplicates_dropped += 1;
      world_.invariants().on_filtered(rank_);
      peer.dirty = true;
      continue;
    }
    if (env.seq > flow.next) {
      // Gap: park until the missing predecessors arrive (head-of-line
      // retransmission fills gaps front-to-back).
      const auto [hit, fresh] = flow.held.try_emplace(env.seq, std::move(env));
      (void)hit;
      if (!fresh) {
        stats_.duplicates_dropped += 1;
        world_.invariants().on_filtered(rank_);
        peer.dirty = true;
      }
      continue;
    }
    // In order: surface it plus every consecutively held successor.
    out.push_back(std::move(env));
    flow.next += 1;
    peer.dirty = true;
    while (!flow.held.empty() && flow.held.begin()->first == flow.next) {
      out.push_back(std::move(flow.held.begin()->second));
      flow.held.erase(flow.held.begin());
      flow.next += 1;
    }
  }
  raw.clear();
  flush_acks();
}

std::size_t ReliableChannel::maybe_retransmit() {
  if (retained_.empty()) return 0;
  const std::int64_t now = now_ns();
  std::size_t n = 0;
  for (auto& [flow, window] : retained_) {
    if (window.empty()) continue;
    Retained& head = window.front();
    if (head.next_due_ns > now) continue;
    head.attempts += 1;
    const std::int64_t backoff = std::min(
        rto_base_ns_ << std::min<std::uint32_t>(head.attempts, 5),
        rto_max_ns_);
    head.next_due_ns = now + backoff;
    stats_.retransmits += 1;
    // A retransmission is a *physical* copy of an already-ledgered logical
    // send: tell the checker so in-flight accounting stays exact. The
    // dest-epoch stamp uses *current* knowledge of the receiver.
    world_.invariants().on_phantom_send(rank_);
    Envelope copy{rank_,    flow.second,
                  head.payload, head.seq,
                  epoch_,   peers_[static_cast<std::size_t>(flow.first)].epoch,
                  head.causal};
    world_.deliver(flow.first, std::move(copy), head.attempts, stats_);
    ++n;
  }
  return n;
}

bool ReliableChannel::has_unacked() const {
  for (const auto& [flow, window] : retained_) {
    if (!window.empty()) return true;
  }
  return false;
}

void ReliableChannel::consume_ack(const Envelope& env) {
  stats_.acks_received += 1;
  const Rank dst = env.src;  // the acking receiver is our send destination
  if (env.epoch != peers_[static_cast<std::size_t>(dst)].epoch) {
    // An acker incarnation we do not currently know: a dead incarnation's
    // cumulative ack could otherwise release a restarted (sequence-0)
    // window it never saw.
    return;
  }
  for_each_packed<AckItem>(env.payload, [&](const AckItem& item) {
    if (item.epoch != epoch_) return;  // ack aimed at a dead incarnation
    const auto it = retained_.find({dst, item.tag});
    if (it == retained_.end()) return;
    auto& window = it->second;
    while (!window.empty() && window.front().seq < item.cum) {
      window.pop_front();
    }
  });
}

void ReliableChannel::flush_acks() {
  for (std::size_t src = 0; src < peers_.size(); ++src) {
    Peer& peer = peers_[src];
    if (!peer.dirty) continue;
    peer.dirty = false;
    std::vector<std::byte> payload;
    for (const auto& [tag, flow] : peer.flows) {
      pack_one(payload, AckItem{tag, peer.epoch, flow.next});
    }
    if (payload.empty()) continue;
    stats_.acks_sent += 1;
    world_.deliver_control(
        static_cast<Rank>(src),
        Envelope{rank_, kAckTag, std::move(payload), 0, epoch_, 0, {}});
  }
}

}  // namespace pagen::mps
