// Bulk-synchronous superstep helper.
//
// Several analytics passes (distributed degree counting, distributed
// connected components) follow the same pattern: every rank buffers typed
// messages, flushes, synchronizes, then drains and processes everything
// addressed to it. In this runtime that pattern is exact — send_bytes
// enqueues into the destination mailbox before returning, so a barrier
// establishes happens-before and a single drain observes all traffic of
// the superstep. (The MPI analogue is an MPI_Alltoallv or a barrier over
// buffered nonblocking sends.)
#pragma once

#include <vector>

#include "mps/comm.h"
#include "mps/send_buffer.h"

namespace pagen::mps {

/// Complete one superstep: flush `buffer`, barrier, drain this rank's
/// mailbox and invoke `handler(item)` for every packed T addressed to us,
/// then barrier again. The trailing barrier is what makes chained
/// supersteps safe: without it a fast rank could start the next step and
/// its (capacity- or flush-triggered) sends would land in a peer's mailbox
/// while that peer is still draining this step. For the same reason the
/// handler must NOT send (a capacity auto-flush inside the handler emits
/// next-step envelopes into peers still draining this step) — collect
/// items and respond after the exchange returns. Every rank of the world
/// must call this the same number of times. Returns the number of items
/// received.
template <typename T, typename Handler>
Count bsp_exchange(Comm& comm, SendBuffer<T>& buffer, int tag,
                   Handler&& handler) {
  buffer.flush_all();
  comm.barrier();
  std::vector<Envelope> inbox;
  comm.poll(inbox);
  Count received = 0;
  for (const Envelope& env : inbox) {
    PAGEN_CHECK_MSG(env.tag == tag,
                    "unexpected tag " << env.tag << " in BSP superstep");
    for_each_packed<T>(env.payload, [&](const T& item) {
      handler(item);
      ++received;
    });
  }
  comm.barrier();
  return received;
}

/// Two-superstep query/reply round: deliver every TQuery to its owner, let
/// `answer(query) -> (destination, TReply)` produce replies (outside the
/// handler, so auto-flushes cannot leak across steps), deliver the replies,
/// and hand each to `absorb`. Returns the number of replies received.
template <typename TQuery, typename TReply, typename Answer, typename Absorb>
Count bsp_query_reply(Comm& comm, SendBuffer<TQuery>& queries, int query_tag,
                      int reply_tag, std::size_t reply_capacity,
                      Answer&& answer, Absorb&& absorb) {
  std::vector<TQuery> pending;
  bsp_exchange<TQuery>(comm, queries, query_tag,
                       [&](const TQuery& q) { pending.push_back(q); });
  SendBuffer<TReply> replies(comm, reply_tag, reply_capacity);
  for (const TQuery& q : pending) {
    auto [dst, reply] = answer(q);
    replies.add(dst, reply);
  }
  return bsp_exchange<TReply>(comm, replies, reply_tag,
                              std::forward<Absorb>(absorb));
}

}  // namespace pagen::mps
