// Per-rank mailbox: a multi-producer single-consumer envelope queue.
//
// Producers are other ranks' sends; the single consumer is the owning rank.
// Delivery is FIFO per producer (and globally, since pushes serialize on one
// mutex), matching MPI's non-overtaking guarantee for same-(src, dst, tag)
// traffic — the property the paper's resolved-message protocol relies on.
//
// pagen-lint: hot-path — every envelope passes through here.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <vector>

#include "mps/message.h"

namespace pagen::mps {

class Mailbox {
 public:
  /// Enqueue one envelope (any thread). Wakes a blocked consumer.
  void push(Envelope e) {
    {
      std::lock_guard lock(mutex_);
      queue_.push_back(std::move(e));
    }
    cv_.notify_one();
  }

  /// Drain everything queued into `out` (appended). Non-blocking.
  /// Returns true if anything was drained. Owner thread only.
  bool try_drain(std::vector<Envelope>& out) {
    std::lock_guard lock(mutex_);
    if (queue_.empty()) return false;
    for (auto& e : queue_) out.push_back(std::move(e));
    queue_.clear();
    return true;
  }

  /// Drain, blocking up to `timeout` for at least one envelope.
  /// Returns true if anything was drained. Owner thread only.
  bool wait_drain(std::vector<Envelope>& out,
                  std::chrono::milliseconds timeout) {
    std::unique_lock lock(mutex_);
    cv_.wait_for(lock, timeout, [&] { return !queue_.empty(); });
    if (queue_.empty()) return false;
    for (auto& e : queue_) out.push_back(std::move(e));
    queue_.clear();
    return true;
  }

  /// Number of queued envelopes (diagnostics only; racy by nature).
  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mutex_);
    return queue_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<Envelope> queue_;
};

}  // namespace pagen::mps
