// Collective operations for the mps runtime.
//
// All collectives are built on one primitive, `exchange`: every rank deposits
// a byte blob and receives every rank's blob (an allgather).  Barrier,
// reductions and broadcast are thin folds over it.  The implementation uses a
// shared generation-counted rendezvous; semantically it is identical to a
// log-P dissemination allgather, and the scaling cost model charges
// ceil(log2 P) per collective accordingly (DESIGN.md §5).
//
// Every rank of the world must call the same collective in the same order —
// the usual MPI contract.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "mps/message.h"
#include "util/types.h"

namespace pagen::mps {

/// Thrown from a collective when another rank of the world has failed.
class WorldAborted : public std::runtime_error {
 public:
  WorldAborted() : std::runtime_error("mps world aborted: a rank failed") {}
};

class CollectiveContext {
 public:
  explicit CollectiveContext(int nranks);

  /// Allgather of raw bytes: deposit `in`, receive all ranks' deposits
  /// indexed by rank. Blocks until every rank has arrived.
  /// Throws WorldAborted if the world was poisoned while waiting.
  std::vector<std::vector<std::byte>> exchange(Rank rank,
                                               std::vector<std::byte> in);

  /// exchange() with a service hook: while waiting for the round to
  /// complete, `service` is invoked (without the rendezvous lock) at least
  /// every `tick`. Reliable-mode Comms use it to keep ingesting acks and
  /// firing retransmission timers inside a collective — otherwise a rank
  /// blocked in the final barrier could never repair a dropped or held
  /// envelope a still-polling peer depends on (docs/robustness.md §2).
  std::vector<std::vector<std::byte>> exchange_serviced(
      Rank rank, std::vector<std::byte> in, std::chrono::milliseconds tick,
      const std::function<void()>& service);

  /// Mark the world failed (a rank died). Every blocked or future exchange()
  /// throws WorldAborted, so one rank's exception cannot deadlock the rest.
  void poison();

  [[nodiscard]] int nranks() const { return nranks_; }

 private:
  int nranks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  int arrived_ = 0;
  std::uint64_t generation_ = 0;
  bool poisoned_ = false;
  std::vector<std::vector<std::byte>> slots_;
  std::vector<std::vector<std::byte>> published_;
};

}  // namespace pagen::mps
