// Systematic schedule exploration for mps worlds ("stateless model
// checking" in the Godefroid/VeriSoft sense).
//
// The pieces, bottom-up:
//
//  - Action: one virtual-scheduler decision — either "let rank r run to its
//    next scheduling point" (kStep) or "rank r's pending poll observes the
//    head envelope of flow (src, tag)" (kDeliver). A schedule is the
//    sequence of Actions taken; it determines the entire run because a
//    hooked world (mps/delivery_hook.h) has no other source of
//    nondeterminism.
//
//  - Scheduler: a DeliveryHook that serializes the world — at most one rank
//    runs between scheduling points — and asks a Strategy to pick each
//    Action from the canonically ordered enabled set. Detects deadlock
//    (live ranks, nothing enabled) and tears the world down through the
//    engine's abort path when a run must stop early.
//
//  - Strategies: RandomStrategy (seeded fuzzing), ReplayStrategy (force a
//    recorded schedule, verifying the enabled sets match — the replay
//    determinism check), DfsStrategy (bounded-exhaustive DFS over
//    schedules with sleep-set pruning of commuting alternatives).
//
//  - explore_exhaustive / explore_random / replay_schedule: drive a Runner
//    (one world construction + rank bodies + property checks) once per
//    schedule and aggregate the verdicts into an ExploreReport.
//
// Soundness of the pruning: two Actions are independent iff they are
// decisions of *different* ranks. A Step(r) only reads r's state and
// appends envelopes to flows keyed by src = r; a Deliver(r, f) pops the
// head of a flow owned by receiver r. Actions of distinct ranks therefore
// touch disjoint rank state and act on each flow from opposite ends
// (append vs pop of a nonempty queue), so they commute; sleep sets built on
// this relation skip only schedules Mazurkiewicz-equivalent to an explored
// one. Replay additionally verifies the enabled set at every step, so a
// wrong independence claim surfaces as a reported divergence instead of a
// silent hole in the exploration.
//
// See docs/static-analysis.md ("Model checking") for bounds and usage.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <vector>

#include "mps/delivery_hook.h"
#include "mps/message.h"
#include "util/types.h"

#include <condition_variable>

namespace pagen::mps::mc {

/// One virtual-scheduler decision.
struct Action {
  enum class Kind : std::uint8_t { kStep = 0, kDeliver = 1 };

  Kind kind = Kind::kStep;
  /// The rank that acts (kStep) or receives (kDeliver).
  Rank rank = 0;
  /// kDeliver only: the delivered flow, (sender, tag). -1/0 for kStep.
  Rank src = -1;
  int tag = 0;

  friend bool operator==(const Action&, const Action&) = default;
  /// Canonical order: by (rank, kind, src, tag). The enabled set is always
  /// built in this order, so strategy choices are stable across replays.
  friend auto operator<=>(const Action&, const Action&) = default;
};

/// True when the two actions commute (may be reordered without changing
/// any rank's observations) — see the header comment for the argument.
[[nodiscard]] inline bool independent(const Action& a, const Action& b) {
  return a.rank != b.rank;
}

/// A recorded schedule plus enough metadata to re-create the run. The
/// `meta` map is free-form (the harness records generator config there);
/// replay only needs `actions`.
struct ScheduleTrace {
  std::map<std::string, std::string> meta;
  std::vector<Action> actions;
  std::string failure;
};

/// Serialize to the "pagen.mpsmc.v1" JSON format (docs/static-analysis.md).
[[nodiscard]] std::string trace_to_json(const ScheduleTrace& trace);

/// Parse a "pagen.mpsmc.v1" document. Returns false (and fills `error`) on
/// malformed input; tolerant of unknown meta keys.
[[nodiscard]] bool trace_from_json(const std::string& json,
                                   ScheduleTrace& out, std::string& error);

/// Picks the next Action. Called by the Scheduler with the canonically
/// ordered enabled set (never empty); returns an index into it, or kPrune
/// to abandon the current run (DFS redundancy, replay divergence).
class Strategy {
 public:
  static constexpr int kPrune = -1;

  Strategy() = default;
  Strategy(const Strategy&) = delete;
  Strategy& operator=(const Strategy&) = delete;
  virtual ~Strategy() = default;

  virtual int choose(const std::vector<Action>& enabled) = 0;
};

/// Uniform random choice from a seeded PRNG; records the schedule taken.
class RandomStrategy final : public Strategy {
 public:
  explicit RandomStrategy(std::uint64_t seed) : rng_(seed) {}

  int choose(const std::vector<Action>& enabled) override;

  [[nodiscard]] const std::vector<Action>& taken() const { return taken_; }

 private:
  std::mt19937_64 rng_;
  std::vector<Action> taken_;
};

/// Forces a recorded schedule. Every step verifies the recorded action is
/// enabled; a divergence (it is not, or the schedule runs out while the
/// world still wants decisions) sets the corresponding flag and prunes.
class ReplayStrategy final : public Strategy {
 public:
  explicit ReplayStrategy(std::vector<Action> actions)
      : actions_(std::move(actions)) {}

  int choose(const std::vector<Action>& enabled) override;

  /// A recorded action was not enabled at its step.
  [[nodiscard]] bool diverged() const { return diverged_; }
  /// The recording ended but the world asked for another decision.
  [[nodiscard]] bool overran() const { return overran_; }
  [[nodiscard]] std::size_t position() const { return next_; }

 private:
  std::vector<Action> actions_;
  std::size_t next_ = 0;
  bool diverged_ = false;
  bool overran_ = false;
};

/// Depth-first enumeration of schedules with sleep-set pruning. One
/// instance spans many runs: each run replays the current path prefix,
/// extends it at the frontier, and advance() backtracks to the next
/// unexplored branch between runs.
class DfsStrategy final : public Strategy {
 public:
  DfsStrategy() = default;

  int choose(const std::vector<Action>& enabled) override;

  /// Backtrack to the next unexplored branch. Returns false when the whole
  /// tree has been explored (exploration complete).
  [[nodiscard]] bool advance();

  /// The current run ended as redundant (all frontier candidates slept).
  [[nodiscard]] bool pruned_run() const { return pruned_run_; }
  /// A replayed prefix produced a different enabled set than recorded —
  /// the world is not schedule-deterministic (this is itself a finding).
  [[nodiscard]] bool diverged() const { return diverged_; }
  [[nodiscard]] std::uint64_t max_depth() const { return max_depth_; }

 private:
  struct Node {
    std::vector<Action> enabled;
    /// Per enabled[i]: 0 = unexplored candidate, 1 = explored,
    /// 2 = suppressed by the inherited sleep set.
    std::vector<std::uint8_t> done;
    int chosen = -1;
  };

  /// Sleep set inherited by the child of path_[depth] via its chosen
  /// action; recomputed whenever a branch is (re)entered.
  [[nodiscard]] std::vector<Action> child_sleep(const Node& node) const;

  std::vector<Node> path_;
  std::size_t depth_ = 0;
  /// Sleep set for the node about to be created at the frontier.
  std::vector<Action> frontier_sleep_;
  bool pruned_run_ = false;
  bool diverged_ = false;
  std::uint64_t max_depth_ = 0;
};

/// Scheduler tuning knobs.
struct SchedulerOptions {
  /// Abort a run whose schedule exceeds this many decisions (livelock
  /// guard); generous relative to the small model-checking configs.
  std::uint64_t max_steps = 1 << 20;
};

/// The virtual scheduler: a DeliveryHook that owns every delivery decision
/// of one World run. Construct one per run, pass it via
/// WorldOptions::delivery_hook (core: ParallelOptions::delivery_hook), run
/// the world, then read the verdict accessors.
///
/// Concurrency model: rank threads park in the hook entry points on one
/// mutex/condvar; all scheduling decisions happen under the mutex on
/// whichever rank thread reached quiescence last. There is no scheduler
/// thread. At most one rank is running between scheduling points, so the
/// run is fully determined by the Strategy's choices.
class Scheduler final : public DeliveryHook {
 public:
  Scheduler(int nranks, Strategy* strategy, SchedulerOptions options = {});

  // DeliveryHook:
  void on_rank_start(Rank r) override;
  void on_rank_exit(Rank r) override;
  void park(Rank dst, Envelope env) override;
  void park_control(Rank dst, Envelope env) override;
  bool on_poll(Rank r, bool blocking, std::vector<Envelope>& out) override;
  void on_collective_enter(Rank r) override;
  void on_collective_exit(Rank r, bool park) override;

  // Post-run verdicts (read after run_ranks returned/threw):
  /// The schedule taken, in decision order.
  [[nodiscard]] const std::vector<Action>& trace() const { return trace_; }
  /// Live ranks with nothing enabled — a real protocol deadlock.
  [[nodiscard]] bool deadlocked() const { return deadlocked_; }
  [[nodiscard]] const std::string& deadlock_detail() const {
    return deadlock_detail_;
  }
  /// The strategy pruned the run (DFS redundancy / replay divergence).
  [[nodiscard]] bool prune_aborted() const { return prune_aborted_; }
  /// The run exceeded SchedulerOptions::max_steps.
  [[nodiscard]] bool step_limited() const { return step_limited_; }
  /// The engine aborted the world (a rank threw) — distinct from the
  /// scheduler's own teardown reasons above.
  [[nodiscard]] bool world_aborted() const { return world_aborted_; }
  /// Envelopes still parked after the run: in a completed run these are
  /// lost messages (a Release-build complement to the debug-only
  /// InvariantChecker ledger).
  [[nodiscard]] std::uint64_t undelivered() const;
  [[nodiscard]] std::uint64_t decisions() const { return decisions_; }

 private:
  enum class RankState : std::uint8_t {
    kUnstarted,     // thread not yet at on_rank_start
    kReady,         // parked; a Step grant runs it to the next point
    kYield,         // parked in non-blocking poll; Step = observe nothing
    kBlocked,       // parked in blocking poll; only Deliver resumes it
    kRunning,       // the active rank, executing between points
    kInCollective,  // blocked in a rendezvous
    kAwakening,     // released from a rendezvous, racing to park
    kExited,
  };

  using Flow = std::pair<Rank, int>;  // (sender, tag)

  /// Run scheduling if the world is quiescent (everyone parked). Must hold
  /// mu_. Handles collective-completion prediction, deadlock detection,
  /// the step limit, and granting the chosen action.
  void maybe_schedule();
  [[nodiscard]] std::vector<Action> build_enabled() const;
  void grant(const Action& a);
  /// Begin teardown: wake every parked rank; polls then observe a
  /// synthetic abort envelope and unwind via WorldAborted. Must hold mu_.
  void begin_abort();
  /// Park the calling rank until granted or aborted. Must hold `lock`.
  void wait_for_grant(std::unique_lock<std::mutex>& lock, Rank r);
  [[nodiscard]] std::string describe_stuck() const;

  const int nranks_;
  Strategy* const strategy_;
  const SchedulerOptions options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<RankState> state_;
  /// Parked envelopes per receiver, keyed by flow; per-flow FIFO preserves
  /// the transport's non-overtaking guarantee.
  std::vector<std::map<Flow, std::deque<Envelope>>> pool_;
  /// Envelopes granted to a resuming rank, consumed by its on_poll.
  std::vector<std::vector<Envelope>> granted_;
  std::vector<std::uint8_t> grant_ready_;
  int started_ = 0;
  int exited_ = 0;
  int in_collective_ = 0;
  int awakening_ = 0;
  Rank active_ = -1;
  bool aborting_ = false;
  bool deadlocked_ = false;
  bool prune_aborted_ = false;
  bool step_limited_ = false;
  bool world_aborted_ = false;
  std::string deadlock_detail_;
  std::uint64_t decisions_ = 0;
  std::vector<Action> trace_;
};

/// One world construction + run + property checks under `sched`. Must
/// catch everything the run throws (WorldAborted teardown is an expected
/// outcome of pruned/aborted schedules) and report violations via the
/// outcome — never by throwing.
struct RunOutcome {
  bool failed = false;
  std::string failure;
};
using Runner = std::function<RunOutcome(Scheduler& sched)>;

struct ExploreOptions {
  int nranks = 2;
  /// Stop exhaustive exploration after this many runs (explored + pruned)
  /// even if the tree is not exhausted; `complete` reports which happened.
  std::uint64_t max_schedules = 1'000'000;
  std::uint64_t max_steps = 1 << 20;
};

struct ExploreReport {
  /// Schedules actually run to a verdict.
  std::uint64_t schedules_explored = 0;
  /// Runs abandoned by sleep-set pruning (redundant interleavings).
  std::uint64_t schedules_pruned = 0;
  std::uint64_t decisions = 0;
  std::uint64_t max_depth = 0;
  /// True when the schedule tree was exhausted within max_schedules.
  bool complete = false;
  bool failed = false;
  std::string failure;
  /// The failing schedule (replayable), valid when `failed`.
  ScheduleTrace failing;
};

/// Bounded-exhaustive DFS with sleep-set pruning. Stops at the first
/// property violation (its schedule is recorded in the report).
[[nodiscard]] ExploreReport explore_exhaustive(const ExploreOptions& options,
                                               const Runner& runner);

/// `schedules` independent runs under RandomStrategy(base_seed + i).
[[nodiscard]] ExploreReport explore_random(const ExploreOptions& options,
                                           std::uint64_t base_seed,
                                           std::uint64_t schedules,
                                           const Runner& runner);

struct ReplayReport {
  RunOutcome outcome;
  /// The recorded schedule matched the world's behavior step for step.
  bool matched = false;
  /// Scheduler verdicts of the replayed run.
  bool deadlocked = false;
  std::string deadlock_detail;
  std::uint64_t undelivered = 0;
};

/// Re-run one recorded schedule.
[[nodiscard]] ReplayReport replay_schedule(const ExploreOptions& options,
                                           const ScheduleTrace& trace,
                                           const Runner& runner);

}  // namespace pagen::mps::mc
