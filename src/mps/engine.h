// World and Engine: construct a rank group and run a rank function on every
// rank, one OS thread per rank.
//
// Ranks may outnumber hardware threads (this reproduction routinely runs
// P = 160 logical ranks, mirroring the paper's processor counts); the
// algorithms are latency-tolerant by design, so oversubscription affects
// wall-clock but not correctness or the measured load counters.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "mps/collectives.h"
#include "mps/comm.h"
#include "mps/fault.h"
#include "mps/invariant.h"
#include "mps/mailbox.h"
#include "mps/stats.h"
#include "util/types.h"

namespace pagen::obs {
class Session;
}

namespace pagen::mps {

class DeliveryHook;

/// Runtime configuration of one World beyond its rank count. Defaults give
/// the historical fault-free, best-effort transport.
struct WorldOptions {
  /// Deterministic fault script (mps/fault.h). An active plan implies
  /// `reliable` — injected faults without the repair layer would just be
  /// corruption.
  FaultPlan fault_plan;

  /// Route every send through the ack/retransmit/dedup layer
  /// (mps/reliable.h). Safe — but pointless overhead — without faults.
  bool reliable = false;

  /// Retransmission timeout base and cap (exponential backoff between
  /// them). The base should comfortably exceed a poll round-trip.
  std::int64_t rto_base_ms = 25;
  std::int64_t rto_max_ms = 400;

  /// How many times a rank that dies of an InjectedCrash is respawned
  /// before the failure is treated as fatal (aborting the world).
  int max_respawns = 3;

  /// Schedule-control seam (mps/delivery_hook.h): when set, every data
  /// envelope is parked with the hook instead of a mailbox and the poll
  /// paths become the hook's scheduling points. Mutually exclusive with
  /// `reliable` and an active `fault_plan` — a hooked world is plain
  /// best-effort transport under a virtual scheduler. Non-owning; must
  /// outlive the World.
  DeliveryHook* delivery_hook = nullptr;
};

/// Shared runtime state for one group of ranks. Owns the mailboxes and the
/// collective rendezvous; ranks access it only through their Comm endpoint.
class World {
 public:
  explicit World(int nranks, WorldOptions options = {});

  [[nodiscard]] int size() const { return nranks_; }
  [[nodiscard]] Mailbox& mailbox(Rank r);
  [[nodiscard]] CollectiveContext& collectives() { return collectives_; }
  [[nodiscard]] const WorldOptions& options() const { return options_; }
  [[nodiscard]] bool reliable() const { return options_.reliable; }

  /// The fault injector, or null when the plan is inert.
  [[nodiscard]] FaultInjector* injector() { return injector_.get(); }

  /// The schedule-control hook, or null for real mailbox delivery.
  [[nodiscard]] DeliveryHook* hook() const { return options_.delivery_hook; }

  /// Debug-build invariant checker (mps/invariant.h). In Release builds
  /// this is the zero-cost stub; call sites need no #ifdef.
  [[nodiscard]] InvariantChecker& invariants() { return invariants_; }

  /// Rank r's incarnation number: 0 until it is respawned after an
  /// injected crash. Read and written only on r's own thread.
  [[nodiscard]] std::uint32_t epoch(Rank r) const;
  void bump_epoch(Rank r);

  /// True once any rank has failed fatally. Comm::send_bytes fast-fails
  /// with WorldAborted so a send-only loop (never polling, e.g. with full
  /// send buffers still draining) unwinds instead of talking to the dead.
  [[nodiscard]] bool aborted() const {
    return aborted_.load(std::memory_order_acquire);
  }
  void mark_aborted() { aborted_.store(true, std::memory_order_release); }

  /// Send-path precheck on src's thread: abort fast-fail, then the fault
  /// script (scripted stall; may throw InjectedCrash at the scripted step).
  void precheck_send(Rank src);

  /// Deliver one physical envelope to dst's mailbox, subject to fault
  /// injection (data tags only; `attempt` > 0 marks a retransmission so
  /// every physical attempt gets an independent injection decision).
  /// Injection tallies go to `sender_stats`.
  void deliver(Rank dst, Envelope env, std::uint32_t attempt,
               CommStats& sender_stats);

  /// Control-path delivery: bypasses injection entirely (acks, aborts).
  void deliver_control(Rank dst, Envelope env);

 private:
  int nranks_;
  WorldOptions options_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  CollectiveContext collectives_;
  InvariantChecker invariants_;
  std::unique_ptr<FaultInjector> injector_;
  std::vector<std::uint32_t> epochs_;
  std::atomic<bool> aborted_{false};
};

/// Result of one Engine::run: per-rank runtime statistics and wall time.
/// Under a crash plan, `rank_stats` holds the *final* incarnation's counters
/// (a dead incarnation's half-run would skew the paper's load figures) and
/// `respawns` totals the recoveries across all ranks.
struct RunResult {
  std::vector<CommStats> rank_stats;
  double wall_seconds = 0.0;
  Count respawns = 0;
};

/// Launch `nranks` threads each executing `body(comm)`. Exceptions thrown by
/// any rank are captured and the first one rethrown after all threads join —
/// except InjectedCrash, which respawns the rank (same thread, fresh Comm,
/// bumped epoch) up to `options.max_respawns` times.
///
/// When `obs` is non-null, every rank records into obs->rank(r): a "rank"
/// span covering the body, the runtime's send/wait/collective events, and —
/// after the body returns — its CommStats folded into the rank's metrics
/// registry. `obs` must outlive the call and have at least `nranks` rank
/// observers.
RunResult run_ranks(int nranks, WorldOptions options,
                    const std::function<void(Comm&)>& body,
                    obs::Session* obs = nullptr);

/// Fault-free overload (the historical entry point).
RunResult run_ranks(int nranks, const std::function<void(Comm&)>& body,
                    obs::Session* obs = nullptr);

}  // namespace pagen::mps
