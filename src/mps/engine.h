// World and Engine: construct a rank group and run a rank function on every
// rank, one OS thread per rank.
//
// Ranks may outnumber hardware threads (this reproduction routinely runs
// P = 160 logical ranks, mirroring the paper's processor counts); the
// algorithms are latency-tolerant by design, so oversubscription affects
// wall-clock but not correctness or the measured load counters.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "mps/collectives.h"
#include "mps/comm.h"
#include "mps/invariant.h"
#include "mps/mailbox.h"
#include "mps/stats.h"
#include "util/types.h"

namespace pagen::obs {
class Session;
}

namespace pagen::mps {

/// Shared runtime state for one group of ranks. Owns the mailboxes and the
/// collective rendezvous; ranks access it only through their Comm endpoint.
class World {
 public:
  explicit World(int nranks);

  [[nodiscard]] int size() const { return nranks_; }
  [[nodiscard]] Mailbox& mailbox(Rank r);
  [[nodiscard]] CollectiveContext& collectives() { return collectives_; }

  /// Debug-build invariant checker (mps/invariant.h). In Release builds
  /// this is the zero-cost stub; call sites need no #ifdef.
  [[nodiscard]] InvariantChecker& invariants() { return invariants_; }

 private:
  int nranks_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  CollectiveContext collectives_;
  InvariantChecker invariants_;
};

/// Result of one Engine::run: per-rank runtime statistics and wall time.
struct RunResult {
  std::vector<CommStats> rank_stats;
  double wall_seconds = 0.0;
};

/// Launch `nranks` threads each executing `body(comm)`. Exceptions thrown by
/// any rank are captured and the first one rethrown after all threads join.
///
/// When `obs` is non-null, every rank records into obs->rank(r): a "rank"
/// span covering the body, the runtime's send/wait/collective events, and —
/// after the body returns — its CommStats folded into the rank's metrics
/// registry. `obs` must outlive the call and have at least `nranks` rank
/// observers.
RunResult run_ranks(int nranks, const std::function<void(Comm&)>& body,
                    obs::Session* obs = nullptr);

}  // namespace pagen::mps
