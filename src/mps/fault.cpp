#include "mps/fault.h"

#include <chrono>
#include <sstream>
#include <thread>

#include "rng/splitmix.h"
#include "util/error.h"

namespace pagen::mps {
namespace {

double parse_prob(const std::string& key, const std::string& v) {
  std::size_t used = 0;
  const double p = std::stod(v, &used);
  PAGEN_CHECK_MSG(used == v.size() && p >= 0.0 && p <= 1.0,
                  "fault plan: " << key << "=" << v
                                 << " is not a probability in [0, 1]");
  return p;
}

std::uint64_t parse_u64(const std::string& key, const std::string& v) {
  std::size_t used = 0;
  const std::uint64_t x = std::stoull(v, &used);
  PAGEN_CHECK_MSG(used == v.size(), "fault plan: bad integer " << key << "="
                                                               << v);
  return x;
}

/// Uniform double in [0, 1) from a 64-bit hash.
double to_unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  std::istringstream is(spec);
  std::string item;
  while (std::getline(is, item, ',')) {
    if (item.empty()) continue;
    const auto eq = item.find('=');
    PAGEN_CHECK_MSG(eq != std::string::npos && eq + 1 < item.size(),
                    "fault plan: expected key=value, got '" << item << "'");
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    if (key == "seed") {
      plan.seed = parse_u64(key, value);
    } else if (key == "drop") {
      plan.drop = parse_prob(key, value);
    } else if (key == "dup") {
      plan.dup = parse_prob(key, value);
    } else if (key == "reorder") {
      plan.reorder = parse_prob(key, value);
    } else if (key == "crash") {
      const auto at = value.find('@');
      PAGEN_CHECK_MSG(at != std::string::npos && at + 1 < value.size(),
                      "fault plan: crash wants rank@step, got '" << value
                                                                 << "'");
      plan.crash_rank =
          static_cast<Rank>(parse_u64(key, value.substr(0, at)));
      plan.crash_step = parse_u64(key, value.substr(at + 1));
    } else if (key == "stall") {
      const auto at = value.find('@');
      const auto colon = value.find(':', at == std::string::npos ? 0 : at);
      PAGEN_CHECK_MSG(at != std::string::npos && colon != std::string::npos &&
                          colon > at + 1 && colon + 1 < value.size(),
                      "fault plan: stall wants rank@step:ms, got '" << value
                                                                    << "'");
      plan.stall_rank =
          static_cast<Rank>(parse_u64(key, value.substr(0, at)));
      plan.stall_step = parse_u64(key, value.substr(at + 1, colon - at - 1));
      plan.stall_ms =
          static_cast<std::uint32_t>(parse_u64(key, value.substr(colon + 1)));
    } else if (key == "jobfail") {
      const auto at = value.find('@');
      if (at == std::string::npos) {
        plan.jobfail = parse_prob(key, value);
        plan.jobfail_attempts = 1;
      } else {
        PAGEN_CHECK_MSG(at + 1 < value.size(),
                        "fault plan: jobfail wants prob[@attempts], got '"
                            << value << "'");
        plan.jobfail = parse_prob(key, value.substr(0, at));
        plan.jobfail_attempts =
            static_cast<std::uint32_t>(parse_u64(key, value.substr(at + 1)));
        PAGEN_CHECK_MSG(plan.jobfail_attempts >= 1,
                        "fault plan: jobfail attempts must be >= 1");
      }
    } else if (key == "storecorrupt") {
      plan.storecorrupt = parse_prob(key, value);
    } else if (key == "ckptcorrupt") {
      plan.ckptcorrupt = parse_prob(key, value);
    } else {
      PAGEN_CHECK_MSG(false, "fault plan: unknown key '" << key << "'");
    }
  }
  PAGEN_CHECK_MSG(plan.drop + plan.dup + plan.reorder <= 1.0,
                  "fault plan: drop + dup + reorder must not exceed 1");
  return plan;
}

std::string FaultPlan::to_string() const {
  std::ostringstream os;
  os << "seed=" << seed;
  if (drop > 0.0) os << ",drop=" << drop;
  if (dup > 0.0) os << ",dup=" << dup;
  if (reorder > 0.0) os << ",reorder=" << reorder;
  if (crash_rank >= 0) os << ",crash=" << crash_rank << "@" << crash_step;
  if (stall_rank >= 0) {
    os << ",stall=" << stall_rank << "@" << stall_step << ":" << stall_ms;
  }
  if (jobfail > 0.0) os << ",jobfail=" << jobfail << "@" << jobfail_attempts;
  if (storecorrupt > 0.0) os << ",storecorrupt=" << storecorrupt;
  if (ckptcorrupt > 0.0) os << ",ckptcorrupt=" << ckptcorrupt;
  return os.str();
}

double FaultPlan::svc_roll(std::uint64_t salt, std::uint64_t key,
                           std::uint32_t attempt) const {
  std::uint64_t h = rng::splitmix64_mix(seed ^ salt);
  h = rng::splitmix64_mix(h ^ key);
  h = rng::splitmix64_mix(h ^ attempt);
  return to_unit(h);
}

FaultInjector::FaultInjector(FaultPlan plan, int nranks)
    : plan_(plan),
      steps_(static_cast<std::size_t>(nranks), 0),
      limbo_(static_cast<std::size_t>(nranks)) {}

FaultAction FaultInjector::decide(Rank src, Rank dst, int tag,
                                  std::uint64_t seq, std::uint32_t attempt,
                                  std::uint32_t epoch) const {
  if (plan_.drop == 0.0 && plan_.dup == 0.0 && plan_.reorder == 0.0) {
    return FaultAction::kDeliver;
  }
  std::uint64_t key = plan_.seed;
  key = rng::splitmix64_mix(
      key ^ ((static_cast<std::uint64_t>(static_cast<std::uint32_t>(src))
              << 32) |
             static_cast<std::uint32_t>(dst)));
  key = rng::splitmix64_mix(
      key ^ ((static_cast<std::uint64_t>(static_cast<std::uint32_t>(tag))
              << 32) |
             attempt));
  key = rng::splitmix64_mix(key ^ seq ^
                            (static_cast<std::uint64_t>(epoch) << 48));
  const double u = to_unit(key);
  if (u < plan_.drop) return FaultAction::kDrop;
  if (u < plan_.drop + plan_.dup) return FaultAction::kDup;
  if (u < plan_.drop + plan_.dup + plan_.reorder) return FaultAction::kHold;
  return FaultAction::kDeliver;
}

void FaultInjector::on_send_step(Rank src) {
  const std::uint64_t step = ++steps_[static_cast<std::size_t>(src)];
  if (src == plan_.stall_rank && step == plan_.stall_step &&
      !stall_fired_.exchange(true)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(plan_.stall_ms));
  }
  if (src == plan_.crash_rank && step >= plan_.crash_step &&
      !crash_fired_.exchange(true)) {
    throw InjectedCrash(src, step);
  }
}

std::vector<Envelope> FaultInjector::swap_held(Rank src, Rank dst, int tag,
                                               Envelope held) {
  auto& limbo = limbo_[static_cast<std::size_t>(src)];
  std::vector<Envelope> released = take_held(src, dst, tag);
  limbo.emplace(FlowKey{dst, tag}, std::move(held));
  return released;
}

std::vector<Envelope> FaultInjector::take_held(Rank src, Rank dst, int tag) {
  auto& limbo = limbo_[static_cast<std::size_t>(src)];
  std::vector<Envelope> released;
  const auto it = limbo.find(FlowKey{dst, tag});
  if (it != limbo.end()) {
    released.push_back(std::move(it->second));
    limbo.erase(it);
  }
  return released;
}

}  // namespace pagen::mps
