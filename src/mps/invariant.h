// Debug-build invariant checking for the mps runtime.
//
// The paper's correctness rests on three message-passing properties that the
// production build merely assumes:
//
//  1. **Non-overtaking delivery** — envelopes between one (src, dst, tag)
//     triple arrive in send order (the MPI guarantee the resolved-message
//     protocol relies on, docs/protocol.md §5).
//  2. **Nothing lost** — at clean termination every envelope ever sent has
//     been drained by its destination; a sent-but-never-received message
//     means a rank stopped polling too early.
//  3. **No silent stall** — the RRP flush-after-receive rule (Section 3.5.2)
//     exists precisely to prevent the cyclic wait where every rank blocks on
//     a response another rank is sitting on. A protocol bug here shows up as
//     an eternal poll loop, which hangs ctest instead of failing it.
//
// InvariantChecker turns all three into runtime assertions. It is compiled
// in only under PAGEN_CHECK_INVARIANTS (a CMake option, ON by default for
// Debug builds); otherwise this header defines an empty stub whose calls
// inline to nothing, so Release builds pay zero cost — not even a branch.
//
// Thread-safety design: per-rank sequence tables are written only by their
// owning rank's thread (sends happen on src's thread, receives on dst's),
// so they need no locks. The cross-thread state (in-flight count, per-rank
// wait flags, activity counter) is std::atomic with seq_cst operations —
// this is a debug checker, so the memory ordering is chosen for obviousness
// rather than speed; the TSan suite validates the discipline.
#pragma once

#include <cstdint>

#include "mps/message.h"
#include "util/error.h"
#include "util/types.h"

#ifdef PAGEN_CHECK_INVARIANTS
#include <atomic>
#include <map>
#include <utility>
#include <vector>
#endif

namespace pagen::mps {

/// Base of every invariant-checker failure. Derives from CheckError: a
/// violated runtime invariant is a programming error, like a failed check.
class InvariantViolation : public CheckError {
 public:
  explicit InvariantViolation(const std::string& what) : CheckError(what) {}
};

/// All ranks are blocked with nothing in flight: the world can make no
/// further progress. The message carries each rank's wait state.
class DeadlockError : public InvariantViolation {
 public:
  explicit DeadlockError(const std::string& what) : InvariantViolation(what) {}
};

#ifdef PAGEN_CHECK_INVARIANTS

/// One checker per World; every hook is called by Comm or the engine, never
/// by user code. See the header comment for the threading discipline.
class InvariantChecker {
 public:
  explicit InvariantChecker(int nranks);

  /// Send-path hook (src's thread). Returns the sequence number to stamp on
  /// the envelope: per-(src, dst, tag), starting at 0. In reliable mode the
  /// ReliableChannel stamps the (identical, lockstep) sequence instead and
  /// this call only feeds the ledger and in-flight accounting.
  std::uint64_t on_send(Rank src, Rank dst, int tag);

  /// A *physical* copy of an already-ledgered logical send entered the
  /// world: a retransmission or an injected duplicate. Counts toward
  /// in-flight (the copy sits in a mailbox) but not toward the sequence
  /// ledger — the matching removal is on_filtered or on_receive.
  void on_phantom_send(Rank src);

  /// A physical envelope was removed without a logical delivery: dropped by
  /// the fault injector, or discarded by receiver-side dedup / stale-epoch
  /// filtering. Balances on_send / on_phantom_send in-flight accounting.
  void on_filtered(Rank r);

  /// Receive-path hook (dst's thread). Asserts the envelope's sequence
  /// number is the next expected one for (src, dst, tag) — the
  /// non-overtaking guarantee — and balances the in-flight accounting.
  /// Fault-aware: expectations are scoped to the sender's incarnation
  /// (Envelope::epoch) and reset when a newer one appears, and a restarted
  /// receiver adopts the first sequence it sees on each flow (its receive
  /// history died with the crash).
  void on_receive(Rank dst, const Envelope& env);

  /// Rank r is about to be respawned after an injected crash (called on
  /// r's own thread, between incarnations). Clears r's sequence tables —
  /// the new incarnation restarts flows at 0 — and switches r to adopt
  /// mode for inbound flows.
  void on_rank_restart(Rank r);

  /// Scripted crashes make the global sent-vs-received ledger unbalanced by
  /// design (a dead incarnation's sends are re-counted by its replay), so
  /// the engine disables the termination audit for crash plans. Drop / dup
  /// / reorder plans keep it: retransmission rebalances the ledger.
  void set_fault_mode(bool skip_termination_audit);

  /// Blocking-wait bracket (owner thread). `what` must be a string literal
  /// ("poll_wait" / "collective"); it names the wait in deadlock dumps and
  /// stays attached to the rank across fruitless retries — only a wait that
  /// made progress clears it.
  void enter_wait(Rank r, const char* what);
  void leave_wait(Rank r, bool made_progress);

  /// A blocking wait elapsed with nothing delivered. Runs the stall probe;
  /// throws DeadlockError (with a per-rank wait-state dump) when the world
  /// is conclusively stuck. See stall_threshold_ns_ for the tuning knob.
  void on_wait_timeout(Rank r);

  /// The rank's body returned (or threw); it can never send again. Exited
  /// ranks count as permanently stalled in the deadlock probe.
  void note_rank_exit(Rank r);

  /// Post-join audit (driver thread, only after an exception-free run):
  /// every (src, dst, tag) sent-count must equal the receive-count, else
  /// throws InvariantViolation listing every lost message flow.
  void verify_termination() const;

 private:
  /// Key of a sequence table entry: (peer rank, tag).
  using FlowKey = std::pair<Rank, int>;

  /// Receive-side expectation, scoped to the sender incarnation it was
  /// built under (see on_receive).
  struct RecvSeq {
    std::uint32_t epoch = 0;
    std::uint64_t expected = 0;
  };

  struct RankState {
    // Owner-thread-only sequence tables (no locks; see header comment).
    std::map<FlowKey, std::uint64_t> next_send_seq;  ///< keyed by (dst, tag)
    std::map<FlowKey, RecvSeq> next_recv_seq;        ///< keyed by (src, tag)

    /// This rank was respawned at least once: adopt the first sequence
    /// seen on unknown inbound flows. Owner-thread only (set between
    /// incarnations on the same thread that runs on_receive).
    bool restarted = false;

    // Cross-thread wait state, read by the stall probe.
    std::atomic<const char*> wait_kind{nullptr};  ///< null = not blocked
    std::atomic<std::int64_t> stalled_since_ns{-1};  ///< -1 = making progress
    std::atomic<int> fruitless_waits{0};
    std::atomic<bool> exited{false};
  };

  [[nodiscard]] bool all_ranks_stalled(std::int64_t now) const;
  [[nodiscard]] std::string dump_wait_states(std::int64_t now) const;

  int nranks_;
  std::vector<RankState> ranks_;
  std::atomic<std::int64_t> in_flight_{0};  ///< sent minus received envelopes
  std::atomic<std::uint64_t> activity_{0};  ///< bumps on every send/receive
  std::int64_t stall_threshold_ns_;
  /// Set once by World's constructor before any rank thread exists.
  bool skip_termination_audit_ = false;
};

#else  // !PAGEN_CHECK_INVARIANTS

/// Release stub: every hook is an empty inline, so checker call sites in
/// Comm and the engine compile to nothing.
class InvariantChecker {
 public:
  explicit InvariantChecker(int /*nranks*/) {}
  std::uint64_t on_send(Rank /*src*/, Rank /*dst*/, int /*tag*/) { return 0; }
  void on_phantom_send(Rank /*src*/) {}
  void on_filtered(Rank /*r*/) {}
  void on_receive(Rank /*dst*/, const Envelope& /*env*/) {}
  void on_rank_restart(Rank /*r*/) {}
  void set_fault_mode(bool /*skip_termination_audit*/) {}
  void enter_wait(Rank /*r*/, const char* /*what*/) {}
  void leave_wait(Rank /*r*/, bool /*made_progress*/) {}
  void on_wait_timeout(Rank /*r*/) {}
  void note_rank_exit(Rank /*r*/) {}
  void verify_termination() const {}
};

#endif  // PAGEN_CHECK_INVARIANTS

}  // namespace pagen::mps
