// Debug-build invariant checking for the mps runtime.
//
// The paper's correctness rests on three message-passing properties that the
// production build merely assumes:
//
//  1. **Non-overtaking delivery** — envelopes between one (src, dst, tag)
//     triple arrive in send order (the MPI guarantee the resolved-message
//     protocol relies on, docs/protocol.md §5).
//  2. **Nothing lost** — at clean termination every envelope ever sent has
//     been drained by its destination; a sent-but-never-received message
//     means a rank stopped polling too early.
//  3. **No silent stall** — the RRP flush-after-receive rule (Section 3.5.2)
//     exists precisely to prevent the cyclic wait where every rank blocks on
//     a response another rank is sitting on. A protocol bug here shows up as
//     an eternal poll loop, which hangs ctest instead of failing it.
//
// InvariantChecker turns all three into runtime assertions. It is compiled
// in only under PAGEN_CHECK_INVARIANTS (a CMake option, ON by default for
// Debug builds); otherwise this header defines an empty stub whose calls
// inline to nothing, so Release builds pay zero cost — not even a branch.
//
// Thread-safety design: per-rank sequence tables are written only by their
// owning rank's thread (sends happen on src's thread, receives on dst's),
// so they need no locks. The cross-thread state (in-flight count, per-rank
// wait flags, activity counter) is std::atomic with seq_cst operations —
// this is a debug checker, so the memory ordering is chosen for obviousness
// rather than speed; the TSan suite validates the discipline.
#pragma once

#include <cstdint>

#include "mps/message.h"
#include "util/error.h"
#include "util/types.h"

#ifdef PAGEN_CHECK_INVARIANTS
#include <atomic>
#include <map>
#include <utility>
#include <vector>
#endif

namespace pagen::mps {

/// Base of every invariant-checker failure. Derives from CheckError: a
/// violated runtime invariant is a programming error, like a failed check.
class InvariantViolation : public CheckError {
 public:
  explicit InvariantViolation(const std::string& what) : CheckError(what) {}
};

/// All ranks are blocked with nothing in flight: the world can make no
/// further progress. The message carries each rank's wait state.
class DeadlockError : public InvariantViolation {
 public:
  explicit DeadlockError(const std::string& what) : InvariantViolation(what) {}
};

#ifdef PAGEN_CHECK_INVARIANTS

/// One checker per World; every hook is called by Comm or the engine, never
/// by user code. See the header comment for the threading discipline.
class InvariantChecker {
 public:
  explicit InvariantChecker(int nranks);

  /// Send-path hook (src's thread). Returns the sequence number to stamp on
  /// the envelope: per-(src, dst, tag), starting at 0.
  std::uint64_t on_send(Rank src, Rank dst, int tag);

  /// Receive-path hook (dst's thread). Asserts the envelope's sequence
  /// number is the next expected one for (src, dst, tag) — the
  /// non-overtaking guarantee — and balances the in-flight accounting.
  void on_receive(Rank dst, const Envelope& env);

  /// Blocking-wait bracket (owner thread). `what` must be a string literal
  /// ("poll_wait" / "collective"); it names the wait in deadlock dumps and
  /// stays attached to the rank across fruitless retries — only a wait that
  /// made progress clears it.
  void enter_wait(Rank r, const char* what);
  void leave_wait(Rank r, bool made_progress);

  /// A blocking wait elapsed with nothing delivered. Runs the stall probe;
  /// throws DeadlockError (with a per-rank wait-state dump) when the world
  /// is conclusively stuck. See stall_threshold_ns_ for the tuning knob.
  void on_wait_timeout(Rank r);

  /// The rank's body returned (or threw); it can never send again. Exited
  /// ranks count as permanently stalled in the deadlock probe.
  void note_rank_exit(Rank r);

  /// Post-join audit (driver thread, only after an exception-free run):
  /// every (src, dst, tag) sent-count must equal the receive-count, else
  /// throws InvariantViolation listing every lost message flow.
  void verify_termination() const;

 private:
  /// Key of a sequence table entry: (peer rank, tag).
  using FlowKey = std::pair<Rank, int>;

  struct RankState {
    // Owner-thread-only sequence tables (no locks; see header comment).
    std::map<FlowKey, std::uint64_t> next_send_seq;  ///< keyed by (dst, tag)
    std::map<FlowKey, std::uint64_t> next_recv_seq;  ///< keyed by (src, tag)

    // Cross-thread wait state, read by the stall probe.
    std::atomic<const char*> wait_kind{nullptr};  ///< null = not blocked
    std::atomic<std::int64_t> stalled_since_ns{-1};  ///< -1 = making progress
    std::atomic<int> fruitless_waits{0};
    std::atomic<bool> exited{false};
  };

  [[nodiscard]] bool all_ranks_stalled(std::int64_t now) const;
  [[nodiscard]] std::string dump_wait_states(std::int64_t now) const;

  int nranks_;
  std::vector<RankState> ranks_;
  std::atomic<std::int64_t> in_flight_{0};  ///< sent minus received envelopes
  std::atomic<std::uint64_t> activity_{0};  ///< bumps on every send/receive
  std::int64_t stall_threshold_ns_;
};

#else  // !PAGEN_CHECK_INVARIANTS

/// Release stub: every hook is an empty inline, so checker call sites in
/// Comm and the engine compile to nothing.
class InvariantChecker {
 public:
  explicit InvariantChecker(int /*nranks*/) {}
  std::uint64_t on_send(Rank /*src*/, Rank /*dst*/, int /*tag*/) { return 0; }
  void on_receive(Rank /*dst*/, const Envelope& /*env*/) {}
  void enter_wait(Rank /*r*/, const char* /*what*/) {}
  void leave_wait(Rank /*r*/, bool /*made_progress*/) {}
  void on_wait_timeout(Rank /*r*/) {}
  void note_rank_exit(Rank /*r*/) {}
  void verify_termination() const {}
};

#endif  // PAGEN_CHECK_INVARIANTS

}  // namespace pagen::mps
