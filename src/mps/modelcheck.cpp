#include "mps/modelcheck.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <utility>

#include "util/error.h"

namespace pagen::mps::mc {
namespace {

/// Parked waiters give up after this long without a grant: a scheduler bug
/// must fail the run loudly instead of hanging CI. Generous — the whole
/// exhaustive sweep of a test config finishes in seconds.
constexpr std::chrono::seconds kWatchdog{120};

Envelope abort_envelope() {
  // Synthetic wake-up: Comm::account_received translates kAbortTag into
  // WorldAborted, which unwinds the rank through the engine's abort path.
  return Envelope{-1, kAbortTag, {}, 0, 0, 0, {}};
}

const char* state_name(int s) {
  static const char* kNames[] = {"unstarted",  "ready",     "yield",
                                 "blocked",    "running",   "collective",
                                 "awakening",  "exited"};
  return kNames[s];
}

bool contains(const std::vector<Action>& set, const Action& a) {
  return std::find(set.begin(), set.end(), a) != set.end();
}

}  // namespace

// ---------------------------------------------------------------------------
// Strategies

int RandomStrategy::choose(const std::vector<Action>& enabled) {
  std::uniform_int_distribution<std::size_t> dist(0, enabled.size() - 1);
  const std::size_t idx = dist(rng_);
  taken_.push_back(enabled[idx]);
  return static_cast<int>(idx);
}

int ReplayStrategy::choose(const std::vector<Action>& enabled) {
  if (next_ >= actions_.size()) {
    overran_ = true;
    return kPrune;
  }
  const Action& want = actions_[next_];
  for (std::size_t i = 0; i < enabled.size(); ++i) {
    if (enabled[i] == want) {
      ++next_;
      return static_cast<int>(i);
    }
  }
  diverged_ = true;
  return kPrune;
}

std::vector<Action> DfsStrategy::child_sleep(const Node& node) const {
  // Sleep-set rule (Godefroid): an alternative that was slept at this node
  // or already fully explored here stays asleep in the chosen child iff it
  // commutes with the chosen action — its interleavings are covered by the
  // sibling subtree where it ran first.
  std::vector<Action> sleep;
  const Action& chosen = node.enabled[static_cast<std::size_t>(node.chosen)];
  for (std::size_t i = 0; i < node.enabled.size(); ++i) {
    if (node.done[i] != 0 && static_cast<int>(i) != node.chosen &&
        independent(node.enabled[i], chosen)) {
      sleep.push_back(node.enabled[i]);
    }
  }
  return sleep;
}

int DfsStrategy::choose(const std::vector<Action>& enabled) {
  max_depth_ = std::max(max_depth_, static_cast<std::uint64_t>(depth_ + 1));
  if (depth_ < path_.size()) {
    // Replaying the committed prefix of the current branch.
    Node& node = path_[depth_];
    if (node.enabled != enabled) {
      // The world is supposed to be a pure function of the schedule; a
      // prefix that replays to a different enabled set is a finding.
      diverged_ = true;
      pruned_run_ = true;
      return kPrune;
    }
    ++depth_;
    frontier_sleep_ = child_sleep(node);
    return node.chosen;
  }
  // Frontier: commit a new node.
  Node node;
  node.enabled = enabled;
  node.done.assign(enabled.size(), 0);
  for (std::size_t i = 0; i < enabled.size(); ++i) {
    if (contains(frontier_sleep_, enabled[i])) node.done[i] = 2;
  }
  int pick = -1;
  for (std::size_t i = 0; i < enabled.size(); ++i) {
    if (node.done[i] == 0) {
      pick = static_cast<int>(i);
      break;
    }
  }
  if (pick < 0) {
    // Every enabled action is asleep: this whole continuation is
    // Mazurkiewicz-equivalent to an explored one.
    path_.push_back(std::move(node));
    pruned_run_ = true;
    return kPrune;
  }
  node.chosen = pick;
  path_.push_back(std::move(node));
  ++depth_;
  frontier_sleep_ = child_sleep(path_.back());
  return pick;
}

bool DfsStrategy::advance() {
  pruned_run_ = false;
  depth_ = 0;
  frontier_sleep_.clear();
  while (!path_.empty()) {
    Node& node = path_.back();
    if (node.chosen >= 0) node.done[static_cast<std::size_t>(node.chosen)] = 1;
    int pick = -1;
    for (std::size_t i = 0; i < node.enabled.size(); ++i) {
      if (node.done[i] == 0) {
        pick = static_cast<int>(i);
        break;
      }
    }
    if (pick >= 0) {
      node.chosen = pick;
      return true;
    }
    path_.pop_back();
  }
  return false;
}

// ---------------------------------------------------------------------------
// Scheduler

Scheduler::Scheduler(int nranks, Strategy* strategy, SchedulerOptions options)
    : nranks_(nranks), strategy_(strategy), options_(options) {
  PAGEN_CHECK(nranks >= 1 && strategy != nullptr);
  state_.assign(static_cast<std::size_t>(nranks), RankState::kUnstarted);
  pool_.resize(static_cast<std::size_t>(nranks));
  granted_.resize(static_cast<std::size_t>(nranks));
  grant_ready_.assign(static_cast<std::size_t>(nranks), 0);
}

void Scheduler::wait_for_grant(std::unique_lock<std::mutex>& lock, Rank r) {
  const auto idx = static_cast<std::size_t>(r);
  const bool ok = cv_.wait_for(lock, kWatchdog, [&] {
    return grant_ready_[idx] != 0 || aborting_;
  });
  if (!ok) {
    // Scheduler bug (nothing granted, nothing aborted): fail the run
    // loudly rather than hang. Entry points may not throw (on_rank_start
    // runs outside the engine's try block), so record and tear down.
    deadlocked_ = true;
    deadlock_detail_ = "scheduler watchdog fired: " + describe_stuck();
    begin_abort();
    return;
  }
  if (grant_ready_[idx] != 0) grant_ready_[idx] = 0;
}

void Scheduler::on_rank_start(Rank r) {
  std::unique_lock<std::mutex> lock(mu_);
  if (aborting_) return;
  state_[static_cast<std::size_t>(r)] = RankState::kReady;
  ++started_;
  maybe_schedule();
  wait_for_grant(lock, r);
}

void Scheduler::on_rank_exit(Rank r) {
  std::unique_lock<std::mutex> lock(mu_);
  state_[static_cast<std::size_t>(r)] = RankState::kExited;
  ++exited_;
  if (active_ == r) active_ = -1;
  maybe_schedule();
}

void Scheduler::park(Rank dst, Envelope env) {
  std::unique_lock<std::mutex> lock(mu_);
  if (aborting_) return;  // teardown traffic: nobody will poll for it
  pool_[static_cast<std::size_t>(dst)][Flow{env.src, env.tag}].push_back(
      std::move(env));
}

void Scheduler::park_control(Rank dst, Envelope env) {
  std::unique_lock<std::mutex> lock(mu_);
  if (env.tag == kAbortTag) {
    // Engine abort broadcast: a rank failed for a reason of its own (not
    // one of the scheduler's teardowns). Wake everyone; parked polls
    // synthesize their own abort envelope.
    world_aborted_ = true;
    begin_abort();
    return;
  }
  pool_[static_cast<std::size_t>(dst)][Flow{env.src, env.tag}].push_back(
      std::move(env));
}

bool Scheduler::on_poll(Rank r, bool blocking, std::vector<Envelope>& out) {
  const auto idx = static_cast<std::size_t>(r);
  std::unique_lock<std::mutex> lock(mu_);
  if (aborting_) {
    out.push_back(abort_envelope());
    return true;
  }
  if (active_ == r) active_ = -1;
  state_[idx] = blocking ? RankState::kBlocked : RankState::kYield;
  maybe_schedule();
  wait_for_grant(lock, r);
  if (!granted_[idx].empty()) {
    for (Envelope& env : granted_[idx]) out.push_back(std::move(env));
    granted_[idx].clear();
    return true;
  }
  if (aborting_) {
    out.push_back(abort_envelope());
    return true;
  }
  return false;  // a Step grant: this poll observes nothing
}

void Scheduler::on_collective_enter(Rank r) {
  std::unique_lock<std::mutex> lock(mu_);
  if (aborting_) return;
  state_[static_cast<std::size_t>(r)] = RankState::kInCollective;
  ++in_collective_;
  if (active_ == r) active_ = -1;
  maybe_schedule();
}

void Scheduler::on_collective_exit(Rank r, bool park) {
  const auto idx = static_cast<std::size_t>(r);
  std::unique_lock<std::mutex> lock(mu_);
  if (aborting_) return;
  if (state_[idx] == RankState::kAwakening) {
    --awakening_;
  } else if (state_[idx] == RankState::kInCollective) {
    --in_collective_;
  }
  if (!park) {
    // Poisoned rendezvous: the rank is unwinding; keep it out of the
    // scheduler's way (the engine abort will reach us via park_control).
    state_[idx] = RankState::kRunning;
    return;
  }
  state_[idx] = RankState::kReady;
  maybe_schedule();
  wait_for_grant(lock, r);
}

std::uint64_t Scheduler::undelivered() const {
  std::unique_lock<std::mutex> lock(mu_);
  std::uint64_t n = 0;
  for (const auto& flows : pool_) {
    for (const auto& [flow, q] : flows) n += q.size();
  }
  for (const auto& g : granted_) n += g.size();
  return n;
}

std::vector<Action> Scheduler::build_enabled() const {
  std::vector<Action> enabled;
  for (Rank r = 0; r < nranks_; ++r) {
    const RankState s = state_[static_cast<std::size_t>(r)];
    if (s == RankState::kReady || s == RankState::kYield) {
      enabled.push_back(Action{Action::Kind::kStep, r, -1, 0});
    }
    if (s == RankState::kYield || s == RankState::kBlocked) {
      // Map order = (src, tag) order, so the set is canonical.
      for (const auto& [flow, q] : pool_[static_cast<std::size_t>(r)]) {
        enabled.push_back(
            Action{Action::Kind::kDeliver, r, flow.first, flow.second});
      }
    }
  }
  return enabled;
}

void Scheduler::grant(const Action& a) {
  const auto idx = static_cast<std::size_t>(a.rank);
  if (a.kind == Action::Kind::kDeliver) {
    auto& flows = pool_[idx];
    auto it = flows.find(Flow{a.src, a.tag});
    PAGEN_CHECK(it != flows.end() && !it->second.empty());
    granted_[idx].push_back(std::move(it->second.front()));
    it->second.pop_front();
    if (it->second.empty()) flows.erase(it);
  }
  state_[idx] = RankState::kRunning;
  active_ = a.rank;
  grant_ready_[idx] = 1;
  cv_.notify_all();
}

void Scheduler::begin_abort() {
  aborting_ = true;
  cv_.notify_all();
}

void Scheduler::maybe_schedule() {
  if (aborting_) {
    cv_.notify_all();
    return;
  }
  // Quiescence: every thread has reached its park, nobody holds the baton,
  // and no rank is racing out of a completed rendezvous.
  if (started_ < nranks_ || active_ != -1 || awakening_ > 0) return;
  const int live = nranks_ - exited_;
  if (live == 0) return;  // run complete
  if (in_collective_ > 0 && in_collective_ == live) {
    // Predicted rendezvous completion: the last participant has arrived
    // (or is the caller), so the rendezvous is about to release every
    // live rank at once. Mark them all awakening *before* any of them can
    // race back in — scheduling resumes deterministically only when the
    // last one has parked again via on_collective_exit.
    for (auto& s : state_) {
      if (s == RankState::kInCollective) {
        s = RankState::kAwakening;
        ++awakening_;
      }
    }
    in_collective_ = 0;
    return;
  }
  std::vector<Action> enabled = build_enabled();
  if (enabled.empty()) {
    // Live ranks, nothing to schedule: a real protocol deadlock (e.g. a
    // rank blocked in poll_wait for an answer nobody will send, or stuck
    // in a rendezvous some live rank will never join).
    deadlocked_ = true;
    deadlock_detail_ = describe_stuck();
    begin_abort();
    return;
  }
  if (trace_.size() >= options_.max_steps) {
    step_limited_ = true;
    begin_abort();
    return;
  }
  const int pick = strategy_->choose(enabled);
  ++decisions_;
  if (pick < 0) {
    prune_aborted_ = true;
    begin_abort();
    return;
  }
  PAGEN_CHECK(static_cast<std::size_t>(pick) < enabled.size());
  trace_.push_back(enabled[static_cast<std::size_t>(pick)]);
  grant(enabled[static_cast<std::size_t>(pick)]);
}

std::string Scheduler::describe_stuck() const {
  std::ostringstream os;
  os << "ranks:";
  for (Rank r = 0; r < nranks_; ++r) {
    os << ' ' << r << '='
       << state_name(static_cast<int>(state_[static_cast<std::size_t>(r)]));
  }
  os << "; parked:";
  bool any = false;
  for (Rank r = 0; r < nranks_; ++r) {
    for (const auto& [flow, q] : pool_[static_cast<std::size_t>(r)]) {
      os << " (" << flow.first << "->" << r << " tag " << flow.second << ") x"
         << q.size();
      any = true;
    }
  }
  if (!any) os << " none";
  return os.str();
}

// ---------------------------------------------------------------------------
// Trace JSON ("pagen.mpsmc.v1")

namespace {

constexpr const char* kTraceFormat = "pagen.mpsmc.v1";

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

/// Minimal recursive-descent reader for the subset of JSON the writer
/// above emits (objects, arrays, strings, integers). Tolerant of
/// whitespace and key order; rejects anything else with a position.
class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : text_(text) {}

  [[nodiscard]] bool fail(const std::string& why) {
    if (error_.empty()) {
      error_ = why + " at offset " + std::to_string(pos_);
    }
    return false;
  }
  [[nodiscard]] const std::string& error() const { return error_; }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' || text_[pos_] == '\r' ||
            text_[pos_] == '\t')) {
      ++pos_;
    }
  }

  bool expect(char c) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      return fail(std::string("expected '") + c + "'");
    }
    ++pos_;
    return true;
  }

  [[nodiscard]] bool peek_is(char c) {
    skip_ws();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  bool parse_string(std::string& out) {
    if (!expect('"')) return false;
    out.clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return fail("dangling escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("short \\u escape");
          int code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code += h - '0';
            else if (h >= 'a' && h <= 'f') code += h - 'a' + 10;
            else if (h >= 'A' && h <= 'F') code += h - 'A' + 10;
            else return fail("bad \\u escape");
          }
          // The writer only emits \u00XX control escapes; anything in the
          // Latin-1 range round-trips, the rest is replaced.
          out += code < 0x100 ? static_cast<char>(code) : '?';
          break;
        }
        default: return fail("unknown escape");
      }
    }
    if (pos_ >= text_.size()) return fail("unterminated string");
    ++pos_;  // closing quote
    return true;
  }

  bool parse_int(long long& out) {
    skip_ws();
    std::size_t end = pos_;
    if (end < text_.size() && text_[end] == '-') ++end;
    while (end < text_.size() && text_[end] >= '0' && text_[end] <= '9') ++end;
    if (end == pos_ || (text_[pos_] == '-' && end == pos_ + 1)) {
      return fail("expected integer");
    }
    out = std::stoll(text_.substr(pos_, end - pos_));
    pos_ = end;
    return true;
  }

  /// Skip one value of any emitted type (for unknown keys).
  bool skip_value() {
    skip_ws();
    if (pos_ >= text_.size()) return fail("expected value");
    const char c = text_[pos_];
    if (c == '"') {
      std::string dummy;
      return parse_string(dummy);
    }
    if (c == '{' || c == '[') {
      const char close = c == '{' ? '}' : ']';
      ++pos_;
      skip_ws();
      if (peek_is(close)) {
        ++pos_;
        return true;
      }
      for (;;) {
        if (c == '{') {
          std::string key;
          if (!parse_string(key) || !expect(':')) return false;
        }
        if (!skip_value()) return false;
        skip_ws();
        if (peek_is(',')) {
          ++pos_;
          continue;
        }
        return expect(close);
      }
    }
    long long dummy = 0;
    return parse_int(dummy);
  }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

std::string trace_to_json(const ScheduleTrace& trace) {
  std::string out;
  out += "{\n  \"format\": \"";
  out += kTraceFormat;
  out += "\",\n  \"meta\": {";
  bool first = true;
  for (const auto& [key, value] : trace.meta) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_escaped(out, key);
    out += ": ";
    append_escaped(out, value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"failure\": ";
  append_escaped(out, trace.failure);
  out += ",\n  \"actions\": [";
  first = true;
  for (const Action& a : trace.actions) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    out += '[';
    out += std::to_string(static_cast<int>(a.kind));
    out += ", ";
    out += std::to_string(a.rank);
    out += ", ";
    out += std::to_string(a.src);
    out += ", ";
    out += std::to_string(a.tag);
    out += ']';
  }
  out += first ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

bool trace_from_json(const std::string& json, ScheduleTrace& out,
                     std::string& error) {
  out = ScheduleTrace{};
  JsonReader r(json);
  bool format_seen = false;
  if (!r.expect('{')) {
    error = r.error();
    return false;
  }
  if (!r.peek_is('}')) {
    for (;;) {
      std::string key;
      if (!r.parse_string(key) || !r.expect(':')) {
        error = r.error();
        return false;
      }
      bool ok = true;
      if (key == "format") {
        std::string fmt;
        ok = r.parse_string(fmt);
        if (ok && fmt != kTraceFormat) {
          error = "unsupported trace format \"" + fmt + "\"";
          return false;
        }
        format_seen = ok;
      } else if (key == "failure") {
        ok = r.parse_string(out.failure);
      } else if (key == "meta") {
        ok = r.expect('{');
        if (ok && !r.peek_is('}')) {
          for (;;) {
            std::string mkey;
            std::string mval;
            if (!r.parse_string(mkey) || !r.expect(':') ||
                !r.parse_string(mval)) {
              ok = false;
              break;
            }
            out.meta[mkey] = mval;
            if (r.peek_is(',')) {
              ok = r.expect(',');
              continue;
            }
            break;
          }
        }
        if (ok) ok = r.expect('}');
      } else if (key == "actions") {
        ok = r.expect('[');
        if (ok && !r.peek_is(']')) {
          for (;;) {
            long long fields[4] = {0, 0, 0, 0};
            ok = r.expect('[');
            for (int i = 0; ok && i < 4; ++i) {
              ok = r.parse_int(fields[i]);
              if (ok && i < 3) ok = r.expect(',');
            }
            if (ok) ok = r.expect(']');
            if (!ok) break;
            if (fields[0] != 0 && fields[0] != 1) {
              error = "bad action kind " + std::to_string(fields[0]);
              return false;
            }
            out.actions.push_back(Action{
                static_cast<Action::Kind>(fields[0]),
                static_cast<Rank>(fields[1]), static_cast<Rank>(fields[2]),
                static_cast<int>(fields[3])});
            if (r.peek_is(',')) {
              ok = r.expect(',');
              continue;
            }
            break;
          }
        }
        if (ok) ok = r.expect(']');
      } else {
        ok = r.skip_value();
      }
      if (!ok) {
        error = r.error();
        return false;
      }
      if (r.peek_is(',')) {
        if (!r.expect(',')) {
          error = r.error();
          return false;
        }
        continue;
      }
      break;
    }
  }
  if (!r.expect('}')) {
    error = r.error();
    return false;
  }
  if (!format_seen) {
    error = "missing \"format\" key";
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Explorers

namespace {

/// Merge the runner's outcome with the scheduler's own verdicts into one
/// failure string; empty = the schedule passed. Scheduler verdicts win:
/// when the scheduler tears a run down, the runner only ever sees the
/// secondary WorldAborted.
std::string verdict(const Scheduler& sched, const RunOutcome& out) {
  if (sched.deadlocked()) return "deadlock: " + sched.deadlock_detail();
  if (sched.step_limited()) {
    return "schedule exceeded max_steps (possible livelock)";
  }
  if (out.failed) return out.failure;
  if (const std::uint64_t lost = sched.undelivered(); lost > 0) {
    return "lost messages: " + std::to_string(lost) +
           " envelopes parked but never delivered";
  }
  if (sched.world_aborted()) {
    return "world aborted without a reported failure";
  }
  return {};
}

}  // namespace

ExploreReport explore_exhaustive(const ExploreOptions& options,
                                 const Runner& runner) {
  ExploreReport report;
  DfsStrategy dfs;
  for (;;) {
    Scheduler sched(options.nranks, &dfs, {options.max_steps});
    const RunOutcome out = runner(sched);
    report.decisions += sched.decisions();
    report.max_depth = std::max(report.max_depth, dfs.max_depth());
    if (dfs.diverged()) {
      report.failed = true;
      report.failure =
          "schedule-determinism violation: a replayed prefix produced a "
          "different enabled set";
      report.failing.actions = sched.trace();
      report.failing.failure = report.failure;
      break;
    }
    if (sched.prune_aborted()) {
      ++report.schedules_pruned;
    } else {
      ++report.schedules_explored;
      const std::string fail = verdict(sched, out);
      if (!fail.empty()) {
        report.failed = true;
        report.failure = fail;
        report.failing.actions = sched.trace();
        report.failing.failure = fail;
        break;
      }
    }
    if (report.schedules_explored + report.schedules_pruned >=
        options.max_schedules) {
      break;
    }
    if (!dfs.advance()) {
      report.complete = true;
      break;
    }
  }
  return report;
}

ExploreReport explore_random(const ExploreOptions& options,
                             std::uint64_t base_seed, std::uint64_t schedules,
                             const Runner& runner) {
  ExploreReport report;
  for (std::uint64_t i = 0; i < schedules; ++i) {
    RandomStrategy strategy(base_seed + i);
    Scheduler sched(options.nranks, &strategy, {options.max_steps});
    const RunOutcome out = runner(sched);
    report.decisions += sched.decisions();
    report.max_depth =
        std::max(report.max_depth,
                 static_cast<std::uint64_t>(sched.trace().size()));
    ++report.schedules_explored;
    const std::string fail = verdict(sched, out);
    if (!fail.empty()) {
      report.failed = true;
      report.failure = fail;
      report.failing.actions = sched.trace();
      report.failing.failure = fail;
      report.failing.meta["schedule_seed"] = std::to_string(base_seed + i);
      return report;
    }
  }
  report.complete = true;
  return report;
}

ReplayReport replay_schedule(const ExploreOptions& options,
                             const ScheduleTrace& trace, const Runner& runner) {
  ReplayStrategy strategy(trace.actions);
  Scheduler sched(options.nranks, &strategy, {options.max_steps});
  ReplayReport report;
  report.outcome = runner(sched);
  const std::string fail = verdict(sched, report.outcome);
  if (!fail.empty()) {
    report.outcome.failed = true;
    report.outcome.failure = fail;
  }
  report.matched = !strategy.diverged() && !strategy.overran() &&
                   strategy.position() == trace.actions.size();
  report.deadlocked = sched.deadlocked();
  report.deadlock_detail = sched.deadlock_detail();
  report.undelivered = sched.undelivered();
  return report;
}

}  // namespace pagen::mps::mc
