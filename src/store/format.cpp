#include "store/format.h"

#include <cstring>

#include "graph/varint_io.h"
#include "util/error.h"

namespace pagen::store {
namespace {

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xffU));
  }
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xffU));
  }
}

std::uint64_t get_u64(std::span<const std::uint8_t> bytes, std::size_t at) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(bytes[at + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  return v;
}

std::uint32_t get_u32(std::span<const std::uint8_t> bytes, std::size_t at) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(bytes[at + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  return v;
}

}  // namespace

BlockHeader encode_block(std::span<const graph::Edge> edges,
                         std::vector<std::uint8_t>& payload) {
  PAGEN_CHECK_MSG(!edges.empty(), "cannot encode an empty block");
  PAGEN_CHECK_MSG(edges.size() <= kMaxBlockEdges,
                  "block of " << edges.size() << " edges exceeds the "
                              << kMaxBlockEdges << " cap");
  payload.clear();
  BlockHeader header;
  header.first_u = edges[0].u;
  header.first_v = edges[0].v;
  NodeId prev_u = edges[0].u;
  NodeId prev_v = edges[0].v;
  for (std::size_t i = 1; i < edges.size(); ++i) {
    const graph::Edge& e = edges[i];
    const auto du = static_cast<std::int64_t>(e.u - prev_u);
    graph::put_varint(payload, zigzag_encode(du));
    if (du == 0) {
      graph::put_varint(payload,
                        zigzag_encode(static_cast<std::int64_t>(e.v - prev_v)));
    } else {
      graph::put_varint(payload, e.v);
    }
    prev_u = e.u;
    prev_v = e.v;
  }
  header.edge_count = static_cast<std::uint32_t>(edges.size());
  header.payload_bytes = static_cast<std::uint32_t>(payload.size());
  header.payload_checksum = fnv1a(payload);
  return header;
}

void decode_block(const BlockHeader& header,
                  std::span<const std::uint8_t> payload, graph::EdgeList& out) {
  PAGEN_CHECK_MSG(payload.size() == header.payload_bytes,
                  "block payload is " << payload.size() << " bytes, header "
                                      << "claims " << header.payload_bytes);
  PAGEN_CHECK_MSG(fnv1a(payload) == header.payload_checksum,
                  "block payload checksum mismatch");
  out.push_back({header.first_u, header.first_v});
  NodeId prev_u = header.first_u;
  NodeId prev_v = header.first_v;
  std::size_t pos = 0;
  for (std::uint32_t i = 1; i < header.edge_count; ++i) {
    const std::int64_t du =
        zigzag_decode(graph::get_varint(payload, pos));
    const NodeId u = prev_u + static_cast<NodeId>(du);
    const NodeId v =
        du == 0
            ? prev_v + static_cast<NodeId>(
                           zigzag_decode(graph::get_varint(payload, pos)))
            : static_cast<NodeId>(graph::get_varint(payload, pos));
    out.push_back({u, v});
    prev_u = u;
    prev_v = v;
  }
  PAGEN_CHECK_MSG(pos == payload.size(),
                  "trailing bytes in block payload (edge count too small "
                  "for the encoded stream)");
}

void put_block_header(std::vector<std::uint8_t>& out, BlockHeader header) {
  const std::size_t start = out.size();
  put_u64(out, header.first_u);
  put_u64(out, header.first_v);
  put_u32(out, header.edge_count);
  put_u32(out, header.payload_bytes);
  put_u64(out, header.payload_checksum);
  const std::uint64_t sum =
      fnv1a(std::span(out).subspan(start, kBlockHeaderBytes - 8),
            kHeaderChecksumSeed);
  put_u64(out, sum);
}

BlockHeader get_block_header(std::span<const std::uint8_t> bytes,
                             std::uint32_t max_block_edges) {
  PAGEN_CHECK_MSG(bytes.size() == kBlockHeaderBytes,
                  "short read of a block header");
  BlockHeader header;
  header.first_u = get_u64(bytes, 0);
  header.first_v = get_u64(bytes, 8);
  header.edge_count = get_u32(bytes, 16);
  header.payload_bytes = get_u32(bytes, 20);
  header.payload_checksum = get_u64(bytes, 24);
  header.header_checksum = get_u64(bytes, 32);
  PAGEN_CHECK_MSG(
      fnv1a(bytes.first(kBlockHeaderBytes - 8), kHeaderChecksumSeed) ==
          header.header_checksum,
      "block header checksum mismatch");
  PAGEN_CHECK_MSG(header.edge_count >= 1, "block header claims zero edges");
  PAGEN_CHECK_MSG(header.edge_count <= max_block_edges &&
                      header.edge_count <= kMaxBlockEdges,
                  "overlong edge count " << header.edge_count
                                         << " in block header (cap "
                                         << max_block_edges << ")");
  PAGEN_CHECK_MSG(
      header.payload_bytes <= header.edge_count * kMaxBytesPerEdge,
      "block header payload size " << header.payload_bytes
                                   << " exceeds the varint bound for "
                                   << header.edge_count << " edges");
  return header;
}

void put_trailer(std::vector<std::uint8_t>& out, const ShardTrailer& trailer) {
  const std::size_t start = out.size();
  out.insert(out.end(), kTrailerMagic, kTrailerMagic + sizeof(kTrailerMagic));
  put_u64(out, trailer.num_blocks);
  put_u64(out, trailer.num_edges);
  put_u64(out, trailer.header_chain);
  const std::uint64_t sum =
      fnv1a(std::span(out).subspan(start, kTrailerBytes - 8),
            kTrailerChecksumSeed);
  put_u64(out, sum);
}

ShardTrailer get_trailer(std::span<const std::uint8_t> bytes) {
  PAGEN_CHECK_MSG(bytes.size() == kTrailerBytes, "short read of a trailer");
  PAGEN_CHECK_MSG(is_trailer(bytes), "bad shard trailer magic");
  PAGEN_CHECK_MSG(fnv1a(bytes.first(kTrailerBytes - 8),
                        kTrailerChecksumSeed) == get_u64(bytes, 32),
                  "shard trailer checksum mismatch");
  ShardTrailer trailer;
  trailer.num_blocks = get_u64(bytes, 8);
  trailer.num_edges = get_u64(bytes, 16);
  trailer.header_chain = get_u64(bytes, 24);
  return trailer;
}

bool is_trailer(std::span<const std::uint8_t> bytes) {
  return bytes.size() >= sizeof(kTrailerMagic) &&
         std::memcmp(bytes.data(), kTrailerMagic, sizeof(kTrailerMagic)) == 0;
}

}  // namespace pagen::store
