// ExternalArray: a file-backed array with a bounded in-RAM page cache.
//
// The external-memory spill primitive (Allendorf et al., arXiv:2211.06884:
// PA generation is I/O-efficient because its state has strong locality).
// Elements live in fixed-size pages; a small LRU cache of pages stays in
// RAM under a caller-set byte budget, dirty pages write back on eviction,
// and pages never written read as the fill value — so a sparse table over
// a huge index space costs only the pages actually touched (the backing
// file stays sparse on Linux). Access is get/set by index; eviction order
// is a pure function of the access sequence (no wall-clock anywhere).
//
// Single-threaded by design: each generator rank owns its private array,
// matching the paper's independent-file-I/O execution model.
#pragma once

#include <cstdint>
#include <fstream>
#include <list>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "util/error.h"
#include "util/types.h"

namespace pagen::store {

template <typename T>
class ExternalArray {
  static_assert(std::is_trivially_copyable_v<T>,
                "pages round-trip through raw file I/O");

 public:
  /// Backs indices [0, size) by `path` (created/truncated). `fill` is the
  /// value of any element never set. `budget_bytes` bounds the in-RAM page
  /// cache (at least one page is always kept).
  ExternalArray(const std::string& path, std::uint64_t size, T fill,
                std::uint64_t budget_bytes)
      : file_(path, std::ios::binary | std::ios::in | std::ios::out |
                        std::ios::trunc),
        path_(path),
        size_(size),
        fill_(fill),
        max_pages_(budget_bytes / kPageBytes > 0 ? budget_bytes / kPageBytes
                                                 : 1),
        on_disk_((size + kPageElems - 1) / kPageElems, false) {
    PAGEN_CHECK_MSG(file_.is_open(), "cannot open spill file " << path);
  }

  [[nodiscard]] std::uint64_t size() const { return size_; }

  [[nodiscard]] T get(std::uint64_t i) {
    PAGEN_CHECK_MSG(i < size_, "spill index " << i << " out of range");
    return page(i / kPageElems).data[i % kPageElems];
  }

  void set(std::uint64_t i, const T& value) {
    PAGEN_CHECK_MSG(i < size_, "spill index " << i << " out of range");
    Page& p = page(i / kPageElems);
    p.data[i % kPageElems] = value;
    p.dirty = true;
  }

  /// Cache misses served from disk or the fill value (spill telemetry).
  [[nodiscard]] Count page_faults() const { return faults_; }
  /// Dirty pages written back on eviction.
  [[nodiscard]] Count pages_spilled() const { return spilled_; }
  [[nodiscard]] std::uint64_t cached_pages() const { return pages_.size(); }

 private:
  static constexpr std::uint64_t kPageElems = 4096;
  static constexpr std::uint64_t kPageBytes = kPageElems * sizeof(T);

  struct Page {
    std::uint64_t index = 0;
    std::vector<T> data;
    bool dirty = false;
  };

  Page& page(std::uint64_t index) {
    const auto it = table_.find(index);
    if (it != table_.end()) {
      // Move to the LRU front.
      pages_.splice(pages_.begin(), pages_, it->second);
      return *pages_.begin();
    }
    ++faults_;
    if (pages_.size() >= max_pages_) evict();
    pages_.emplace_front();
    Page& p = pages_.front();
    p.index = index;
    p.data.assign(kPageElems, fill_);
    if (on_disk_[index]) {
      file_.clear();
      file_.seekg(static_cast<std::streamoff>(index * kPageBytes));
      file_.read(reinterpret_cast<char*>(p.data.data()),
                 static_cast<std::streamsize>(kPageBytes));
      PAGEN_CHECK_MSG(file_.good(), "spill read failed for " << path_);
    }
    table_.emplace(index, pages_.begin());
    return p;
  }

  void evict() {
    Page& victim = pages_.back();
    if (victim.dirty) {
      file_.clear();
      file_.seekp(static_cast<std::streamoff>(victim.index * kPageBytes));
      file_.write(reinterpret_cast<const char*>(victim.data.data()),
                  static_cast<std::streamsize>(kPageBytes));
      PAGEN_CHECK_MSG(file_.good(), "spill write failed for " << path_);
      on_disk_[victim.index] = true;
      ++spilled_;
    }
    table_.erase(victim.index);
    pages_.pop_back();
  }

  std::fstream file_;
  std::string path_;
  std::uint64_t size_;
  T fill_;
  std::uint64_t max_pages_;
  std::vector<bool> on_disk_;  ///< page ever written back
  std::list<Page> pages_;      ///< front = most recently used
  std::unordered_map<std::uint64_t, typename std::list<Page>::iterator> table_;
  Count faults_ = 0;
  Count spilled_ = 0;
};

}  // namespace pagen::store
