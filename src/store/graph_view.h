// ShardedGraphView: a compressed store re-opened as a streamable graph.
//
// The view loads only the manifest; edges stay on disk until a kernel
// pulls them through an EdgeSource, one decoded block per active shard
// stream. The constructor's memory budget is a *guarantee check*: the view
// computes the worst-case working set of streaming all shards concurrently
// (what the distributed kernels do — one rank thread per shard) and
// refuses to open when it would not fit, instead of drifting over the
// budget at runtime. docs/storage.md §4 spells out the accounting.
#pragma once

#include <cstdint>
#include <string>

#include "graph/edge_list.h"
#include "graph/edge_source.h"
#include "store/edge_writer.h"
#include "util/types.h"

namespace pagen::store {

class ShardedGraphView {
 public:
  /// Opens `dir`'s manifest. `memory_budget_bytes` bounds the decoded +
  /// compressed working set of streaming every shard concurrently; 0 means
  /// unbudgeted. Throws CheckError when the manifest is missing/malformed
  /// or the budget cannot hold one block per shard.
  explicit ShardedGraphView(std::string dir,
                            std::uint64_t memory_budget_bytes = 0);

  [[nodiscard]] const StoreManifest& manifest() const { return manifest_; }

  /// Worst-case bytes one shard stream holds (one decoded block + one
  /// compressed block at the varint bound, plus I/O slack).
  [[nodiscard]] std::uint64_t per_shard_stream_bytes() const;

  /// The store as a kernel-ready source: num_shards streams, each decoding
  /// its shard block by block and verifying every checksum plus the
  /// manifest's edge count. Safe for concurrent distinct-shard visits
  /// (every visit opens its own reader). The source owns copies of what it
  /// needs and stays valid after the view is destroyed.
  [[nodiscard]] graph::EdgeSource edge_source() const;

  /// The store as a single merged stream (shard 0..P-1 in rank order) —
  /// num_shards == 1, so a kernel consumes it on one rank with zero
  /// message traffic. Same verification and budget profile as one shard
  /// stream.
  [[nodiscard]] graph::EdgeSource merged_edge_source() const;

  /// Decode one whole shard (tests / small stores; ignores the budget).
  [[nodiscard]] graph::EdgeList load_shard(int rank) const;

 private:
  std::string dir_;
  std::uint64_t budget_;
  StoreManifest manifest_;
};

}  // namespace pagen::store
