#include "store/shard_reader.h"

#include <cstring>

#include "util/error.h"

namespace pagen::store {

EdgeShardReader::EdgeShardReader(const std::string& path,
                                 std::uint32_t max_block_edges)
    : is_(path, std::ios::binary),
      path_(path),
      max_block_edges_(max_block_edges) {
  PAGEN_CHECK_MSG(is_.is_open(), "cannot open shard " << path);
  char magic[sizeof(kShardMagic)];
  is_.read(magic, sizeof(magic));
  PAGEN_CHECK_MSG(
      is_.good() && std::memcmp(magic, kShardMagic, sizeof(magic)) == 0,
      "bad shard magic in " << path);
}

ShardTrailer EdgeShardReader::visit(
    const std::function<void(std::span<const graph::Edge>)>& fn) {
  Count blocks = 0;
  Count edges = 0;
  std::uint64_t chain = kFnvOffset;
  for (;;) {
    head_buf_.resize(kBlockHeaderBytes);
    is_.read(reinterpret_cast<char*>(head_buf_.data()),
             static_cast<std::streamsize>(head_buf_.size()));
    PAGEN_CHECK_MSG(
        is_.gcount() == static_cast<std::streamsize>(kBlockHeaderBytes),
        "truncated shard " << path_ << " (mid-header after " << blocks
                           << " blocks)");
    if (is_trailer(head_buf_)) {
      const ShardTrailer trailer = get_trailer(head_buf_);
      PAGEN_CHECK_MSG(trailer.num_blocks == blocks &&
                          trailer.num_edges == edges,
                      "shard trailer counts disagree with content of "
                          << path_);
      PAGEN_CHECK_MSG(trailer.header_chain == chain,
                      "shard header chain mismatch in " << path_);
      is_.peek();
      PAGEN_CHECK_MSG(is_.eof(), "trailing bytes after trailer in " << path_);
      return trailer;
    }
    const BlockHeader header = get_block_header(head_buf_, max_block_edges_);
    chain = fnv1a_u64(header.header_checksum, chain);
    payload_buf_.resize(header.payload_bytes);
    is_.read(reinterpret_cast<char*>(payload_buf_.data()),
             static_cast<std::streamsize>(payload_buf_.size()));
    PAGEN_CHECK_MSG(
        is_.gcount() == static_cast<std::streamsize>(header.payload_bytes),
        "truncated shard " << path_ << " (mid-block " << blocks << ")");
    block_buf_.clear();
    decode_block(header, payload_buf_, block_buf_);
    ++blocks;
    edges += header.edge_count;
    fn(block_buf_);
  }
}

graph::EdgeList EdgeShardReader::read_all() {
  graph::EdgeList all;
  (void)visit([&all](std::span<const graph::Edge> block) {
    all.insert(all.end(), block.begin(), block.end());
  });
  return all;
}

}  // namespace pagen::store
