// Block-streaming reader of one compressed shard (docs/storage.md).
//
// EdgeShardReader decodes a shard file block by block: the memory held at
// any instant is one compressed block plus its decoded edges, never the
// shard. Every byte is verified on the way through — header checksum,
// payload checksum, bounds on the claimed counts before any allocation,
// and finally the trailer's chained header checksum and totals — so a
// truncated file, a flipped bit anywhere, or a forged header raises
// CheckError instead of yielding a single wrong edge.
#pragma once

#include <cstdint>
#include <fstream>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "graph/edge_list.h"
#include "store/format.h"
#include "util/types.h"

namespace pagen::store {

class EdgeShardReader {
 public:
  /// Opens `path` and verifies the shard magic (throws CheckError on a
  /// missing file or wrong magic). `max_block_edges` bounds what any block
  /// header may claim — pass the manifest's block_edges so a forged count
  /// raises even below the absolute kMaxBlockEdges cap.
  explicit EdgeShardReader(const std::string& path,
                           std::uint32_t max_block_edges = kMaxBlockEdges);

  EdgeShardReader(const EdgeShardReader&) = delete;
  EdgeShardReader& operator=(const EdgeShardReader&) = delete;

  /// Stream every block through `fn` in file order, verifying everything;
  /// returns the validated trailer. Single use: the reader's file position
  /// is at EOF afterwards. Not thread-safe — use one reader per thread.
  ShardTrailer visit(
      const std::function<void(std::span<const graph::Edge>)>& fn);

  /// Decode the whole shard into one list (tests and small stores).
  [[nodiscard]] graph::EdgeList read_all();

 private:
  std::ifstream is_;
  std::string path_;
  std::uint32_t max_block_edges_;
  std::vector<std::uint8_t> head_buf_;
  std::vector<std::uint8_t> payload_buf_;
  graph::EdgeList block_buf_;
};

}  // namespace pagen::store
