// Streaming writers of the compressed edge store (docs/storage.md).
//
// CompressedEdgeWriter turns an append stream of edges into one compressed
// shard file: edges buffer until a block fills, the block is delta+varint
// encoded (store/format.h), and the header+payload bytes go straight to
// disk — memory held is one block, regardless of how many billions of
// edges pass through. finish() seals the file with the trailer and returns
// the shard's summary (counts, bytes, whole-file FNV-1a, computed
// incrementally while writing, so sealing never re-reads the file).
//
// StoreWriter fans a multi-rank generation run into one writer per rank —
// the drop-in consumer for ParallelOptions::edge_batch_sink, where each
// rank thread appends only to its own slot (no locking, matching the
// paper's "processors write their files independently" model) — and
// finalizes the directory with the v3 manifest.
#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "graph/edge_list.h"
#include "store/format.h"
#include "util/types.h"

namespace pagen::store {

/// Per-shard outcome recorded in the manifest.
struct ShardSummary {
  Count edges = 0;
  Count blocks = 0;
  std::uint64_t bytes = 0;          ///< file size, magic through trailer
  std::uint64_t file_checksum = 0;  ///< FNV-1a over the whole file
};

/// The v3 store manifest (file `store.manifest`).
struct StoreManifest {
  NodeId num_nodes = 0;
  int num_shards = 0;
  std::size_t block_edges = kDefaultBlockEdges;
  std::vector<ShardSummary> shards;

  [[nodiscard]] Count total_edges() const {
    Count total = 0;
    for (const ShardSummary& s : shards) total += s.edges;
    return total;
  }
  [[nodiscard]] std::uint64_t total_bytes() const {
    std::uint64_t total = 0;
    for (const ShardSummary& s : shards) total += s.bytes;
    return total;
  }
};

/// Path of compressed shard `rank` inside `dir` (edges.<rank>.pcs).
[[nodiscard]] std::string shard_path(const std::string& dir, int rank);

/// Path of the v3 manifest inside `dir`.
[[nodiscard]] std::string manifest_path(const std::string& dir);

/// Write the manifest atomically (temp + rename).
void write_manifest(const std::string& dir, const StoreManifest& manifest);

/// Read and strictly parse the manifest; throws CheckError when absent or
/// malformed.
[[nodiscard]] StoreManifest load_manifest(const std::string& dir);

/// True when `dir` holds a v3 compressed-store manifest.
[[nodiscard]] bool is_compressed_store(const std::string& dir);

/// Streaming FNV-1a of a file's raw bytes in fixed-size chunks (never loads
/// the file); false when it cannot be opened.
[[nodiscard]] bool streaming_file_fnv1a(const std::string& path,
                                        std::uint64_t& out);

class CompressedEdgeWriter {
 public:
  /// Opens (truncates) `path` and writes the shard magic. `block_edges`
  /// must be in [1, kMaxBlockEdges].
  explicit CompressedEdgeWriter(const std::string& path,
                                std::size_t block_edges = kDefaultBlockEdges);

  CompressedEdgeWriter(const CompressedEdgeWriter&) = delete;
  CompressedEdgeWriter& operator=(const CompressedEdgeWriter&) = delete;

  void append(const graph::Edge& edge);
  void append(std::span<const graph::Edge> edges);

  /// Flush the partial block, write the trailer, close, and return the
  /// summary. Must be called exactly once; append after finish throws.
  ShardSummary finish();

  /// Edges appended so far, including those still buffered in the open
  /// block.
  [[nodiscard]] Count edges_written() const {
    return edges_ + pending_.size();
  }

 private:
  void flush_block();
  void write_bytes(const std::vector<std::uint8_t>& bytes);

  std::ofstream os_;
  std::string path_;
  std::size_t block_edges_;
  graph::EdgeList pending_;
  std::vector<std::uint8_t> payload_;  // encode scratch
  std::vector<std::uint8_t> buf_;      // serialized header/trailer scratch
  std::uint64_t file_fnv_ = kFnvOffset;
  std::uint64_t header_chain_ = kFnvOffset;
  Count edges_ = 0;
  Count blocks_ = 0;
  std::uint64_t bytes_ = 0;
  bool finished_ = false;
};

class StoreWriter {
 public:
  /// Creates `dir` (and parents) and opens one truncating shard writer per
  /// rank, so a retried run replaces any earlier partial store.
  StoreWriter(const std::string& dir, int num_shards,
              std::size_t block_edges = kDefaultBlockEdges);

  /// Append a batch to rank `r`'s shard. Thread-safe for distinct ranks
  /// (each rank owns its writer); matches the edge_batch_sink contract.
  void append(Rank r, std::span<const graph::Edge> edges);

  /// Seal every shard and write the manifest. Returns the manifest.
  StoreManifest finish(NodeId num_nodes);

 private:
  std::string dir_;
  std::size_t block_edges_;
  std::vector<std::unique_ptr<CompressedEdgeWriter>> writers_;
};

}  // namespace pagen::store
