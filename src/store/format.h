// The compressed edge-store block format (docs/storage.md).
//
// A compressed shard is a sequence of self-describing, individually
// checksummed blocks, so a reader can stream a billion-edge shard holding
// only one decoded block in memory, seek by skipping headers, and detect
// any on-disk corruption before a single damaged edge escapes:
//
//   [8-byte shard magic "PAGENCS1"]
//   repeat: [40-byte BlockHeader][payload: delta+varint edges]
//   [40-byte ShardTrailer "PAGENCT1" + counts + header chain]
//
// Encoding: the block's first edge lives verbatim in the header; every
// following edge stores zigzag-varint delta(u) and, when u repeats, zigzag
// delta(v), else v as a plain varint. PA emission order is near-sorted in u
// (each node emits its x edges consecutively), so delta(u) is almost always
// 0 or 1 — one byte — and the stream lands well under 8 bytes/edge at any
// scale. The scheme is delta-robust: any emission order round-trips, sorted
// order merely compresses best.
//
// Integrity: the header carries an FNV-1a checksum of the payload AND of
// its own first 32 bytes (domain-separated from the trailer checksum, so a
// trailer can never masquerade as a header). The trailer chains every
// block's header checksum, which pins block count, order, and content of
// the whole shard. decode bounds-checks edge_count/payload_bytes *before*
// allocating, so a forged header raises instead of driving a giant read.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/edge_list.h"
#include "util/types.h"

namespace pagen::store {

inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

/// FNV-1a over `bytes`, continuing from `h` (chainable).
[[nodiscard]] constexpr std::uint64_t fnv1a(std::span<const std::uint8_t> bytes,
                                            std::uint64_t h = kFnvOffset) {
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= kFnvPrime;
  }
  return h;
}

/// Fold one little-endian u64 into an FNV-1a chain (the trailer's
/// header-checksum chain).
[[nodiscard]] constexpr std::uint64_t fnv1a_u64(std::uint64_t word,
                                                std::uint64_t h) {
  for (int i = 0; i < 8; ++i) {
    h ^= (word >> (8 * i)) & 0xffU;
    h *= kFnvPrime;
  }
  return h;
}

inline constexpr char kShardMagic[8] = {'P', 'A', 'G', 'E', 'N', 'C', 'S', '1'};
inline constexpr char kTrailerMagic[8] = {'P', 'A', 'G', 'E',
                                          'N', 'C', 'T', '1'};

/// Domain separation: header and trailer checksums start from different
/// seeds so 40 trailer bytes can never validate as a block header.
inline constexpr std::uint64_t kHeaderChecksumSeed =
    (kFnvOffset ^ 'B') * kFnvPrime;
inline constexpr std::uint64_t kTrailerChecksumSeed =
    (kFnvOffset ^ 'T') * kFnvPrime;

inline constexpr std::size_t kBlockHeaderBytes = 40;
inline constexpr std::size_t kTrailerBytes = 40;

/// Default edges per block: ~64 Ki edges decode to 1 MiB, the unit of
/// memory a streaming reader holds per shard.
inline constexpr std::size_t kDefaultBlockEdges = std::size_t{1} << 16;

/// Hard cap a reader enforces on any header's edge_count — a forged count
/// beyond this raises before any allocation.
inline constexpr std::uint32_t kMaxBlockEdges = 1U << 24;

/// Absolute worst-case payload bytes per edge (two 10-byte varints); the
/// reader's bound on payload_bytes relative to edge_count.
inline constexpr std::size_t kMaxBytesPerEdge = 20;

struct BlockHeader {
  NodeId first_u = 0;  ///< the block's first edge, stored verbatim
  NodeId first_v = 0;
  std::uint32_t edge_count = 0;     ///< edges in the block (>= 1)
  std::uint32_t payload_bytes = 0;  ///< encoded bytes following the header
  std::uint64_t payload_checksum = 0;  ///< FNV-1a of the payload
  std::uint64_t header_checksum = 0;   ///< FNV-1a of the 32 bytes above
};

struct ShardTrailer {
  Count num_blocks = 0;
  Count num_edges = 0;
  /// FNV-1a chain over every block's header_checksum, in file order.
  std::uint64_t header_chain = kFnvOffset;
};

[[nodiscard]] constexpr std::uint64_t zigzag_encode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

[[nodiscard]] constexpr std::int64_t zigzag_decode(std::uint64_t z) {
  return static_cast<std::int64_t>((z >> 1) ^ (~(z & 1) + 1));
}

/// Delta+varint-encode `edges` (>= 1, <= kMaxBlockEdges) into `payload`
/// (cleared first) and return the describing header with both checksums
/// filled in.
[[nodiscard]] BlockHeader encode_block(std::span<const graph::Edge> edges,
                                       std::vector<std::uint8_t>& payload);

/// Decode a block whose header already passed get_block_header. Verifies
/// payload size and checksum, decodes exactly edge_count edges, and appends
/// them to `out`; throws CheckError on any mismatch, truncation, or
/// trailing bytes — garbage never decodes.
void decode_block(const BlockHeader& header,
                  std::span<const std::uint8_t> payload, graph::EdgeList& out);

/// Append the 40-byte serialization of `header` to `out`, computing
/// header_checksum over the first 32 bytes (the input's value is ignored).
void put_block_header(std::vector<std::uint8_t>& out, BlockHeader header);

/// Parse and verify 40 header bytes. Throws CheckError when the checksum
/// fails, edge_count is 0 or exceeds `max_block_edges`, or payload_bytes
/// exceeds edge_count * kMaxBytesPerEdge.
[[nodiscard]] BlockHeader get_block_header(std::span<const std::uint8_t> bytes,
                                           std::uint32_t max_block_edges);

/// Append the 40-byte trailer (magic + counts + chain + checksum).
void put_trailer(std::vector<std::uint8_t>& out, const ShardTrailer& trailer);

/// Parse and verify 40 trailer bytes (magic already matched by the caller).
/// Throws CheckError on a checksum mismatch.
[[nodiscard]] ShardTrailer get_trailer(std::span<const std::uint8_t> bytes);

/// True when `bytes` (>= 8) starts with the trailer magic.
[[nodiscard]] bool is_trailer(std::span<const std::uint8_t> bytes);

}  // namespace pagen::store
