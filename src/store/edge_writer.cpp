#include "store/edge_writer.h"

#include <filesystem>
#include <sstream>

#include "graph/varint_io.h"
#include "util/error.h"

namespace pagen::store {

std::string shard_path(const std::string& dir, int rank) {
  return dir + "/edges." + std::to_string(rank) + ".pcs";
}

std::string manifest_path(const std::string& dir) {
  return dir + "/store.manifest";
}

void write_manifest(const std::string& dir, const StoreManifest& manifest) {
  std::ostringstream os;
  os << "pagen-store 3\n";
  os << "nodes " << manifest.num_nodes << "\n";
  os << "shards " << manifest.num_shards << "\n";
  os << "block_edges " << manifest.block_edges << "\n";
  for (int r = 0; r < manifest.num_shards; ++r) {
    const ShardSummary& s = manifest.shards[static_cast<std::size_t>(r)];
    os << "shard " << r << " " << s.edges << " " << s.blocks << " " << s.bytes
       << " " << std::hex << s.file_checksum << std::dec << "\n";
  }
  const std::string text = os.str();
  graph::save_bytes_atomic(
      manifest_path(dir),
      std::vector<std::uint8_t>(text.begin(), text.end()));
}

StoreManifest load_manifest(const std::string& dir) {
  std::ifstream is(manifest_path(dir));
  PAGEN_CHECK_MSG(is.is_open(), "no compressed-store manifest in " << dir);
  std::string tag;
  int version = 0;
  is >> tag >> version;
  PAGEN_CHECK_MSG(is.good() && tag == "pagen-store" && version == 3,
                  "bad compressed-store manifest header in " << dir);
  StoreManifest manifest;
  is >> tag >> manifest.num_nodes;
  PAGEN_CHECK_MSG(is.good() && tag == "nodes", "malformed manifest: nodes");
  is >> tag >> manifest.num_shards;
  PAGEN_CHECK_MSG(is.good() && tag == "shards" && manifest.num_shards >= 1,
                  "malformed manifest: shards");
  is >> tag >> manifest.block_edges;
  PAGEN_CHECK_MSG(is.good() && tag == "block_edges" &&
                      manifest.block_edges >= 1 &&
                      manifest.block_edges <= kMaxBlockEdges,
                  "malformed manifest: block_edges");
  manifest.shards.resize(static_cast<std::size_t>(manifest.num_shards));
  for (int r = 0; r < manifest.num_shards; ++r) {
    int rank = -1;
    ShardSummary& s = manifest.shards[static_cast<std::size_t>(r)];
    is >> tag >> rank >> s.edges >> s.blocks >> s.bytes >> std::hex >>
        s.file_checksum >> std::dec;
    PAGEN_CHECK_MSG(is.good() && tag == "shard" && rank == r,
                    "malformed manifest: shard " << r);
  }
  return manifest;
}

bool is_compressed_store(const std::string& dir) {
  return std::ifstream(manifest_path(dir)).is_open();
}

bool streaming_file_fnv1a(const std::string& path, std::uint64_t& out) {
  std::ifstream is(path, std::ios::binary);
  if (!is.is_open()) return false;
  std::uint64_t h = kFnvOffset;
  std::vector<std::uint8_t> chunk(std::size_t{1} << 20);
  for (;;) {
    is.read(reinterpret_cast<char*>(chunk.data()),
            static_cast<std::streamsize>(chunk.size()));
    const auto got = static_cast<std::size_t>(is.gcount());
    h = fnv1a(std::span(chunk).first(got), h);
    if (got < chunk.size()) break;
  }
  out = h;
  return true;
}

CompressedEdgeWriter::CompressedEdgeWriter(const std::string& path,
                                           std::size_t block_edges)
    : os_(path, std::ios::binary | std::ios::trunc),
      path_(path),
      block_edges_(block_edges) {
  PAGEN_CHECK_MSG(block_edges_ >= 1 && block_edges_ <= kMaxBlockEdges,
                  "block_edges must be in [1, " << kMaxBlockEdges << "]");
  PAGEN_CHECK_MSG(os_.is_open(), "cannot open " << path << " for writing");
  pending_.reserve(block_edges_);
  buf_.assign(kShardMagic, kShardMagic + sizeof(kShardMagic));
  write_bytes(buf_);
}

void CompressedEdgeWriter::append(const graph::Edge& edge) {
  PAGEN_CHECK_MSG(!finished_, "append on a finished shard writer");
  pending_.push_back(edge);
  if (pending_.size() >= block_edges_) flush_block();
}

void CompressedEdgeWriter::append(std::span<const graph::Edge> edges) {
  PAGEN_CHECK_MSG(!finished_, "append on a finished shard writer");
  for (const graph::Edge& e : edges) {
    pending_.push_back(e);
    if (pending_.size() >= block_edges_) flush_block();
  }
}

void CompressedEdgeWriter::flush_block() {
  if (pending_.empty()) return;
  const BlockHeader header = encode_block(pending_, payload_);
  buf_.clear();
  put_block_header(buf_, header);
  // put_block_header computed the definitive header checksum; chain it.
  const std::uint64_t header_sum =
      fnv1a(std::span(buf_).first(kBlockHeaderBytes - 8), kHeaderChecksumSeed);
  header_chain_ = fnv1a_u64(header_sum, header_chain_);
  write_bytes(buf_);
  write_bytes(payload_);
  edges_ += pending_.size();
  ++blocks_;
  pending_.clear();
}

ShardSummary CompressedEdgeWriter::finish() {
  PAGEN_CHECK_MSG(!finished_, "finish called twice on " << path_);
  flush_block();
  ShardTrailer trailer;
  trailer.num_blocks = blocks_;
  trailer.num_edges = edges_;
  trailer.header_chain = header_chain_;
  buf_.clear();
  put_trailer(buf_, trailer);
  write_bytes(buf_);
  os_.flush();
  PAGEN_CHECK_MSG(os_.good(), "shard write failed for " << path_);
  os_.close();
  finished_ = true;
  return {edges_, blocks_, bytes_, file_fnv_};
}

void CompressedEdgeWriter::write_bytes(const std::vector<std::uint8_t>& bytes) {
  os_.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  file_fnv_ = fnv1a(bytes, file_fnv_);
  bytes_ += bytes.size();
}

StoreWriter::StoreWriter(const std::string& dir, int num_shards,
                         std::size_t block_edges)
    : dir_(dir), block_edges_(block_edges) {
  PAGEN_CHECK_MSG(num_shards >= 1, "store needs at least one shard");
  std::filesystem::create_directories(dir);
  writers_.reserve(static_cast<std::size_t>(num_shards));
  for (int r = 0; r < num_shards; ++r) {
    writers_.push_back(std::make_unique<CompressedEdgeWriter>(
        shard_path(dir, r), block_edges_));
  }
}

void StoreWriter::append(Rank r, std::span<const graph::Edge> edges) {
  writers_.at(static_cast<std::size_t>(r))->append(edges);
}

StoreManifest StoreWriter::finish(NodeId num_nodes) {
  StoreManifest manifest;
  manifest.num_nodes = num_nodes;
  manifest.num_shards = static_cast<int>(writers_.size());
  manifest.block_edges = block_edges_;
  manifest.shards.reserve(writers_.size());
  for (auto& w : writers_) manifest.shards.push_back(w->finish());
  write_manifest(dir_, manifest);
  return manifest;
}

}  // namespace pagen::store
