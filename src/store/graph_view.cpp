#include "store/graph_view.h"

#include <utility>

#include "store/shard_reader.h"
#include "util/error.h"

namespace pagen::store {
namespace {

/// One shard stream, verified against the manifest's per-shard count.
void stream_shard(const std::string& dir, const StoreManifest& manifest,
                  int shard, const graph::EdgeVisitor& visit) {
  EdgeShardReader reader(
      shard_path(dir, shard),
      static_cast<std::uint32_t>(manifest.block_edges));
  const ShardTrailer trailer = reader.visit(visit);
  PAGEN_CHECK_MSG(
      trailer.num_edges ==
          manifest.shards[static_cast<std::size_t>(shard)].edges,
      "shard " << shard << " edge count disagrees with the manifest");
}

}  // namespace

ShardedGraphView::ShardedGraphView(std::string dir,
                                   std::uint64_t memory_budget_bytes)
    : dir_(std::move(dir)),
      budget_(memory_budget_bytes),
      manifest_(load_manifest(dir_)) {
  if (budget_ > 0) {
    const std::uint64_t working_set =
        static_cast<std::uint64_t>(manifest_.num_shards) *
        per_shard_stream_bytes();
    PAGEN_CHECK_MSG(
        working_set <= budget_,
        "memory budget " << budget_ << " cannot hold one block per shard ("
                         << working_set
                         << " bytes for " << manifest_.num_shards
                         << " shards of " << manifest_.block_edges
                         << "-edge blocks); raise the budget or rebuild the "
                            "store with smaller blocks");
  }
}

std::uint64_t ShardedGraphView::per_shard_stream_bytes() const {
  const auto block = static_cast<std::uint64_t>(manifest_.block_edges);
  return block * sizeof(graph::Edge) + block * kMaxBytesPerEdge + 4096;
}

graph::EdgeSource ShardedGraphView::edge_source() const {
  graph::EdgeSource source;
  source.num_nodes = manifest_.num_nodes;
  source.num_shards = manifest_.num_shards;
  source.visit_shard = [dir = dir_, manifest = manifest_](
                           int shard, const graph::EdgeVisitor& visit) {
    stream_shard(dir, manifest, shard, visit);
  };
  return source;
}

graph::EdgeSource ShardedGraphView::merged_edge_source() const {
  graph::EdgeSource source;
  source.num_nodes = manifest_.num_nodes;
  source.num_shards = 1;
  source.visit_shard = [dir = dir_, manifest = manifest_](
                           int shard, const graph::EdgeVisitor& visit) {
    PAGEN_CHECK_MSG(shard == 0, "merged source has exactly one shard");
    for (int r = 0; r < manifest.num_shards; ++r) {
      stream_shard(dir, manifest, r, visit);
    }
  };
  return source;
}

graph::EdgeList ShardedGraphView::load_shard(int rank) const {
  PAGEN_CHECK_MSG(rank >= 0 && rank < manifest_.num_shards,
                  "shard " << rank << " out of range");
  graph::EdgeList all;
  all.reserve(manifest_.shards[static_cast<std::size_t>(rank)].edges);
  stream_shard(dir_, manifest_, rank, [&all](std::span<const graph::Edge> b) {
    all.insert(all.end(), b.begin(), b.end());
  });
  return all;
}

}  // namespace pagen::store
