// mpsmc — schedule-exploration model checker for the MPS protocol.
//
// Runs the real generators (core::generate) under the virtual scheduler in
// mps/modelcheck.h and checks every schedule against the property oracles
// in core/mc_runner.h. Three modes:
//
//   --exhaustive        bounded-exhaustive DFS with sleep-set pruning.
//                       Without an explicit --ranks/--n it sweeps the
//                       standard configs (P in {2,3} x n in {16, 64}).
//   --schedules=N       N seeded random schedules (--schedule-seed).
//   --replay=FILE       re-run a dumped schedule trace (config comes from
//                       the trace's meta block).
//
// A failing schedule is dumped as replayable "pagen.mpsmc.v1" JSON to
// --trace-out. Exit status: 0 all schedules clean, 1 a property violation
// was found (or a replay diverged), 2 usage/config error.
//
// See docs/static-analysis.md ("Model checking") for what the properties
// prove and where the bounds come from.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/mc_runner.h"
#include "mps/modelcheck.h"
#include "partition/partition.h"
#include "util/cli.h"

namespace {

using pagen::Cli;
using pagen::PaConfig;
using pagen::core::mc::PropertyRunner;
namespace mc = pagen::mps::mc;

struct ToolConfig {
  PropertyRunner::Options runner;
  bool exhaustive = false;
  bool sweep = false;  ///< exhaustive without explicit --ranks/--n
  std::uint64_t random_schedules = 0;
  std::uint64_t schedule_seed = 1;
  std::uint64_t max_schedules = 1024;
  std::uint64_t max_steps = 1 << 20;
  std::string replay_path;
  std::string trace_out = "mpsmc-failure.json";
  std::string json_out;
  bool quiet = false;
};

struct ConfigReport {
  PropertyRunner::Options options;
  mc::ExploreReport explore;
  std::uint64_t distinct_outputs = 0;
};

std::string describe(const PropertyRunner::Options& o) {
  std::ostringstream os;
  os << "P=" << o.ranks << " n=" << o.pa.n << " x=" << o.pa.x
     << " seed=" << o.pa.seed << " scheme=" << pagen::partition::to_string(o.scheme)
     << (o.flush_resolved_after_batch ? "" : " [flush rule OFF]");
  return os.str();
}

void dump_failure(const ToolConfig& cfg, const PropertyRunner& runner,
                  const mc::ExploreReport& report) {
  mc::ScheduleTrace trace = report.failing;
  runner.fill_meta(trace);
  if (!cfg.trace_out.empty()) {
    std::ofstream out(cfg.trace_out);
    out << mc::trace_to_json(trace);
    if (!cfg.quiet) {
      std::cout << "[mpsmc] failing schedule dumped to " << cfg.trace_out
                << " (" << trace.actions.size() << " actions)\n";
    }
  }
}

void write_json_report(const ToolConfig& cfg,
                       const std::vector<ConfigReport>& reports, bool failed) {
  if (cfg.json_out.empty()) return;
  std::ofstream out(cfg.json_out);
  out << "{\n  \"schema\": \"pagen.mpsmc.report.v1\",\n  \"failed\": "
      << (failed ? "true" : "false") << ",\n  \"configs\": [";
  bool first = true;
  for (const ConfigReport& r : reports) {
    out << (first ? "\n" : ",\n");
    first = false;
    out << "    {\"ranks\": " << r.options.ranks << ", \"n\": " << r.options.pa.n
        << ", \"x\": " << r.options.pa.x
        << ", \"scheme\": \"" << pagen::partition::to_string(r.options.scheme)
        << "\", \"explored\": " << r.explore.schedules_explored
        << ", \"pruned\": " << r.explore.schedules_pruned
        << ", \"decisions\": " << r.explore.decisions
        << ", \"max_depth\": " << r.explore.max_depth
        << ", \"complete\": " << (r.explore.complete ? "true" : "false")
        << ", \"distinct_outputs\": " << r.distinct_outputs << "}";
  }
  out << "\n  ]\n}\n";
}

int run_explorations(const ToolConfig& cfg) {
  std::vector<PropertyRunner::Options> configs;
  if (cfg.sweep) {
    for (const int ranks : {2, 3}) {
      for (const pagen::NodeId n : {pagen::NodeId{16}, pagen::NodeId{64}}) {
        PropertyRunner::Options o = cfg.runner;
        o.ranks = ranks;
        o.pa.n = n;
        configs.push_back(o);
      }
    }
  } else {
    configs.push_back(cfg.runner);
  }

  std::vector<ConfigReport> reports;
  bool failed = false;
  for (const PropertyRunner::Options& options : configs) {
    PropertyRunner runner(options);
    mc::ExploreOptions eo;
    eo.nranks = options.ranks;
    eo.max_schedules = cfg.max_schedules;
    eo.max_steps = cfg.max_steps;
    const mc::ExploreReport report =
        cfg.exhaustive
            ? mc::explore_exhaustive(eo, runner.runner())
            : mc::explore_random(eo, cfg.schedule_seed, cfg.random_schedules,
                                 runner.runner());
    reports.push_back(ConfigReport{options, report,
                                   runner.distinct_outputs().size()});
    if (!cfg.quiet) {
      std::cout << "[mpsmc] " << (cfg.exhaustive ? "exhaustive " : "random ")
                << describe(options)
                << ": explored=" << report.schedules_explored
                << " pruned=" << report.schedules_pruned
                << " decisions=" << report.decisions
                << " max_depth=" << report.max_depth
                << (cfg.exhaustive
                        ? (report.complete ? " [tree exhausted]"
                                           : " [schedule budget reached]")
                        : "")
                << " distinct_outputs=" << runner.distinct_outputs().size()
                << '\n';
    }
    if (report.failed) {
      failed = true;
      std::cout << "[mpsmc] VIOLATION " << describe(options) << ": "
                << report.failure << '\n';
      dump_failure(cfg, runner, report);
      break;
    }
  }
  write_json_report(cfg, reports, failed);
  if (!failed && !cfg.quiet) {
    std::cout << "[mpsmc] all schedules clean\n";
  }
  return failed ? 1 : 0;
}

int run_replay(const ToolConfig& cfg) {
  std::ifstream in(cfg.replay_path);
  if (!in) {
    std::cerr << "mpsmc: cannot open " << cfg.replay_path << '\n';
    return 2;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  mc::ScheduleTrace trace;
  std::string error;
  if (!mc::trace_from_json(buf.str(), trace, error)) {
    std::cerr << "mpsmc: bad trace file: " << error << '\n';
    return 2;
  }
  PropertyRunner::Options options = cfg.runner;
  if (!PropertyRunner::options_from_meta(trace, options, error)) {
    std::cerr << "mpsmc: " << error << '\n';
    return 2;
  }
  PropertyRunner runner(options);
  mc::ExploreOptions eo;
  eo.nranks = options.ranks;
  eo.max_steps = cfg.max_steps;
  const mc::ReplayReport report =
      mc::replay_schedule(eo, trace, runner.runner());
  if (!cfg.quiet) {
    std::cout << "[mpsmc] replay " << describe(options) << " ("
              << trace.actions.size() << " actions): "
              << (report.matched ? "schedule matched" : "schedule DIVERGED")
              << '\n';
    if (report.outcome.failed) {
      std::cout << "[mpsmc] reproduced failure: " << report.outcome.failure
                << '\n';
    } else {
      std::cout << "[mpsmc] schedule passed all checks\n";
    }
    if (!trace.failure.empty()) {
      std::cout << "[mpsmc] recorded failure:   " << trace.failure << '\n';
    }
  }
  // A replay is "good" when it reproduces the recording: same failure (or
  // same pass) on a schedule the world accepted step for step.
  if (!report.matched) return 1;
  const bool recorded_failed = !trace.failure.empty();
  if (recorded_failed != report.outcome.failed) return 1;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv,
                {"exhaustive", "schedules", "replay", "n", "x", "p", "seed",
                 "ranks", "scheme", "buffer-capacity", "node-batch",
                 "schedule-seed", "max-schedules", "max-steps",
                 "no-flush-rule", "causal-check", "trace-out", "json-out",
                 "quiet"});
  if (cli.help()) {
    std::cout << cli.usage("mpsmc");
    return 0;
  }

  ToolConfig cfg;
  cfg.runner.pa.n = cli.get_u64("n", 32);
  cfg.runner.pa.x = cli.get_u64("x", 1);
  cfg.runner.pa.p = cli.get_double("p", 0.5);
  cfg.runner.pa.seed = cli.get_u64("seed", 1);
  cfg.runner.ranks = static_cast<int>(cli.get_u64("ranks", 2));
  cfg.runner.scheme =
      pagen::partition::scheme_from_string(cli.get_str("scheme", "rrp"));
  cfg.runner.buffer_capacity = cli.get_u64("buffer-capacity", 8);
  cfg.runner.node_batch = cli.get_u64("node-batch", 16);
  cfg.runner.flush_resolved_after_batch = !cli.get_bool("no-flush-rule", false);
  cfg.runner.causal_check = cli.get_bool("causal-check", false);
  cfg.exhaustive = cli.get_bool("exhaustive", false);
  cfg.sweep = cfg.exhaustive && !cli.has("ranks") && !cli.has("n");
  cfg.random_schedules = cli.get_u64("schedules", 0);
  cfg.schedule_seed = cli.get_u64("schedule-seed", 1);
  cfg.max_schedules = cli.get_u64("max-schedules", 1024);
  cfg.max_steps = cli.get_u64("max-steps", 1 << 20);
  cfg.replay_path = cli.get_str("replay", "");
  cfg.trace_out = cli.get_str("trace-out", "mpsmc-failure.json");
  cfg.json_out = cli.get_str("json-out", "");
  cfg.quiet = cli.get_bool("quiet", false);

  if (!cfg.replay_path.empty()) return run_replay(cfg);
  if (!cfg.exhaustive && cfg.random_schedules == 0) {
    std::cerr << "mpsmc: pick a mode: --exhaustive, --schedules=N, or "
                 "--replay=FILE\n"
              << Cli(argc, argv, {}).usage("mpsmc");
    return 2;
  }
  if (cfg.exhaustive && cfg.random_schedules > 0) {
    std::cerr << "mpsmc: --exhaustive and --schedules are mutually "
                 "exclusive\n";
    return 2;
  }
  return run_explorations(cfg);
}
